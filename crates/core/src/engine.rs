//! The Triad-NVM secure memory controller.
//!
//! [`SecureMemory`] models everything below the private caches: the
//! shared L3, the counter cache, the Merkle-tree cache (which also
//! holds MAC blocks), the encryption/MAC engines, the two per-region
//! Bonsai Merkle Trees, the persistent register file, and the NVM
//! memory controller with its ADR write-pending queue.
//!
//! ## Functional model
//!
//! The NVM image ([`triad_mem::SparseStore`]) always holds
//! *ciphertext* and *serialised metadata* — exactly the bytes a
//! physical attacker could read or modify. Plaintext and current
//! metadata values live in volatile maps mirroring the caches' resident
//! sets; a [`SecureMemory::crash`] drops all of it, and
//! [`SecureMemory::recover`] must then reconstruct a verified state
//! from the NVM image alone, which is what makes the paper's
//! experiments honest: tampering and torn persists really are detected
//! by MAC/tree mismatches.
//!
//! ## Write paths (Figure 3 / Figure 7)
//!
//! * **Lazy** (non-persistent region, or the `WriteBack` scheme):
//!   ciphertext goes to the WPQ at eviction; counters, MACs and tree
//!   nodes are updated in their caches only and written back when
//!   evicted, each eviction refreshing its parent's slot.
//! * **Atomic** (persistent region under `Strict`/`TriadNvm`): the
//!   update set {data, counter, MAC, persisted tree levels, new root}
//!   is staged in persistent registers (READY_BIT), copied into the
//!   WPQ, and committed; a crash mid-copy is replayed at recovery.

use std::collections::{BTreeMap, BTreeSet};

use triad_cache::{BatchPrefetcher, Cache, Replacement};
use triad_crypto::aes::Aes128;
use triad_crypto::counter::{AnyCounterBlock, IncrementOutcome};
use triad_crypto::ctr::{decrypt_block, encrypt_block, Iv};
use triad_crypto::mac::{Mac64, MacEngine};
use triad_mem::controller::MemoryController;
use triad_mem::store::{Block, SparseStore};
use triad_meta::bmt::{self, NodeBuf, NodeId};
use triad_meta::layout::{BlockRole, MemoryMap, RegionKind, RegionLayout};
use triad_sim::config::SystemConfig;
use triad_sim::events::{emit, SharedEventSink};
use triad_sim::stats::{Histogram, Scope, StatRegister, StatRegistry, StatSet};
use triad_sim::time::{Duration, Time};
use triad_sim::{BlockAddr, PhysAddr, BLOCK_BYTES};

use crate::batch::PendingBatch;
use crate::error::{CrashHookKind, IntegrityKind, SecureMemoryError};
use crate::recovery::{CorruptRange, RecoveryReport};
use crate::registers::{PersistentRegisters, StagedUpdate, StagedWrite};
use crate::scheme::{CounterPersistence, KeyPolicy, PersistScheme};

/// Shorthand for results of secure-memory operations.
pub type Result<T> = std::result::Result<T, SecureMemoryError>;

/// Whether the engine is running or waiting for recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EngineState {
    Running,
    Crashed,
    /// Recovery declared the persistent region unverifiable.
    PersistentPoisoned,
}

/// Aggregate statistics of the secure engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SecureStats {
    /// Loads served (block granularity).
    pub loads: u64,
    /// Loads that hit in L3.
    pub l3_load_hits: u64,
    /// Stores served.
    pub stores: u64,
    /// Persist operations (`store; clwb; sfence`).
    pub persists: u64,
    /// Reads satisfied as "fresh" (never-written) blocks.
    pub fresh_reads: u64,
    /// Lazy counter-block initialisations (§3.3.4 first-touch).
    pub lazy_counter_inits: u64,
    /// Data blocks encrypted and written to NVM.
    pub nvm_data_writes: u64,
    /// Data blocks fetched from NVM.
    pub nvm_data_reads: u64,
    /// Counter blocks written to NVM (persist path).
    pub counter_writes_persist: u64,
    /// Counter blocks written to NVM (eviction path).
    pub counter_writes_evict: u64,
    /// MAC blocks written to NVM (persist path).
    pub mac_writes_persist: u64,
    /// MAC blocks written to NVM (eviction path).
    pub mac_writes_evict: u64,
    /// BMT nodes written to NVM (persist path).
    pub node_writes_persist: u64,
    /// BMT nodes written to NVM (eviction path).
    pub node_writes_evict: u64,
    /// Counter blocks fetched from NVM.
    pub counter_reads: u64,
    /// MAC blocks fetched from NVM.
    pub mac_reads: u64,
    /// BMT nodes fetched from NVM.
    pub node_reads: u64,
    /// Minor-counter overflows (whole-page re-encryptions).
    pub page_reencryptions: u64,
    /// Atomic persist protocol executions.
    pub atomic_persists: u64,
    /// Epoch boundaries committed (epoch-persistency extension).
    pub epochs: u64,
    /// Counter persists skipped by the Osiris relaxation.
    pub osiris_counter_skips: u64,
    /// Counter blocks reconstructed by the Osiris search at access
    /// time after a crash.
    pub osiris_recoveries: u64,
    /// Write batches committed through the batched persist path.
    pub batches: u64,
    /// Members across all committed write batches.
    pub batch_members: u64,
    /// NVM writes merged away by batching: what a scalar walk would
    /// have written minus what the coalesced commit actually wrote.
    pub batch_writes_merged: u64,
}

impl SecureStats {
    /// Total metadata writes attributable to strict persistence.
    pub fn persist_metadata_writes(&self) -> u64 {
        self.counter_writes_persist + self.mac_writes_persist + self.node_writes_persist
    }

    /// Total metadata writes from natural evictions.
    pub fn evict_metadata_writes(&self) -> u64 {
        self.counter_writes_evict + self.mac_writes_evict + self.node_writes_evict
    }
}

impl StatRegister for SecureStats {
    fn register(&self, scope: &mut Scope<'_>) {
        scope.set("loads", self.loads);
        scope.set("l3_load_hits", self.l3_load_hits);
        scope.set("stores", self.stores);
        scope.set("persists", self.persists);
        scope.set("fresh_reads", self.fresh_reads);
        scope.set("lazy_counter_inits", self.lazy_counter_inits);
        scope.set("nvm_data_writes", self.nvm_data_writes);
        scope.set("nvm_data_reads", self.nvm_data_reads);
        scope.set("counter_reads", self.counter_reads);
        scope.set("mac_reads", self.mac_reads);
        scope.set("node_reads", self.node_reads);
        scope.set("persist_metadata_writes", self.persist_metadata_writes());
        scope.set("evict_metadata_writes", self.evict_metadata_writes());
        scope.set("page_reencryptions", self.page_reencryptions);
        scope.set("atomic_persists", self.atomic_persists);
        scope.set("epochs", self.epochs);
        scope.set("osiris_counter_skips", self.osiris_counter_skips);
        scope.set("osiris_recoveries", self.osiris_recoveries);
        scope.set("batches", self.batches);
        scope.set("batch_members", self.batch_members);
        scope.set("batch_writes_merged", self.batch_writes_merged);
    }
}

/// Latency and depth distributions of the secure engine, attributing
/// per-op end-to-end time to its metadata components (BMT node,
/// counter and MAC fetches) — the overhead breakdown behind the
/// paper's Figure 8 gap between schemes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SecureHists {
    /// End-to-end latency of `load_block`/`store_block` (ns).
    pub op_latency_ns: Histogram,
    /// End-to-end latency of `persist_block`/`flush_block` (ns).
    pub persist_latency_ns: Histogram,
    /// NVM-fetch latency of counter blocks, including verification (ns).
    pub counter_fetch_ns: Histogram,
    /// NVM-fetch latency of MAC blocks (ns).
    pub mac_fetch_ns: Histogram,
    /// NVM-fetch latency of BMT nodes, including verification (ns).
    pub node_fetch_ns: Histogram,
    /// Eviction-queue depth sampled at each drain.
    pub evict_queue_depth: Histogram,
}

impl StatRegister for SecureHists {
    fn register(&self, scope: &mut Scope<'_>) {
        scope.histogram("op_latency_ns", &self.op_latency_ns);
        scope.histogram("persist_latency_ns", &self.persist_latency_ns);
        scope.histogram("counter_fetch_ns", &self.counter_fetch_ns);
        scope.histogram("mac_fetch_ns", &self.mac_fetch_ns);
        scope.histogram("node_fetch_ns", &self.node_fetch_ns);
        scope.histogram("evict_queue_depth", &self.evict_queue_depth);
    }
}

/// A data region's bounds, for address arithmetic in user code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionHandle {
    start: PhysAddr,
    bytes: u64,
}

impl RegionHandle {
    /// First byte of the region's data area.
    pub fn start(&self) -> PhysAddr {
        self.start
    }

    /// Usable data bytes.
    pub fn len_bytes(&self) -> u64 {
        self.bytes
    }

    /// Whether `addr` falls inside the data area.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        addr.0 >= self.start.0 && addr.0 < self.start.0 + self.bytes
    }
}

/// Builder for [`SecureMemory`].
///
/// # Example
///
/// ```rust
/// use triad_core::{PersistScheme, SecureMemoryBuilder};
///
/// # fn main() -> Result<(), triad_core::SecureMemoryError> {
/// let mem = SecureMemoryBuilder::new()
///     .capacity_bytes(1 << 22)
///     .persistent_fraction_eighths(4)
///     .scheme(PersistScheme::triad_nvm(2))
///     .build()?;
/// assert!(mem.persistent_region().len_bytes() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SecureMemoryBuilder {
    config: SystemConfig,
    scheme: PersistScheme,
    key_policy: KeyPolicy,
    counter_persistence: CounterPersistence,
    key_seed: u64,
}

impl Default for SecureMemoryBuilder {
    fn default() -> Self {
        SecureMemoryBuilder::new()
    }
}

impl SecureMemoryBuilder {
    /// Starts from the small test configuration; override as needed.
    pub fn new() -> Self {
        SecureMemoryBuilder {
            config: SystemConfig::tiny(),
            scheme: PersistScheme::triad_nvm(1),
            key_policy: KeyPolicy::SessionCounter,
            counter_persistence: CounterPersistence::Strict,
            key_seed: 0x5EC0_11D5,
        }
    }

    /// Uses a complete [`SystemConfig`] (e.g. [`SystemConfig::isca19`]).
    pub fn config(mut self, config: SystemConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the NVM capacity in bytes.
    pub fn capacity_bytes(mut self, bytes: u64) -> Self {
        self.config.mem.capacity_bytes = bytes;
        self
    }

    /// Sets the persistent-region fraction in eighths (§3.3.1 requires
    /// a whole number of eighths).
    pub fn persistent_fraction_eighths(mut self, eighths: u8) -> Self {
        self.config.persistent_eighths = eighths;
        self
    }

    /// Sets the persistence scheme.
    pub fn scheme(mut self, scheme: PersistScheme) -> Self {
        self.scheme = scheme;
        self
    }

    /// Sets the key policy (§3.3.2).
    pub fn key_policy(mut self, policy: KeyPolicy) -> Self {
        self.key_policy = policy;
        self
    }

    /// Sets the encryption-counter organisation (§2.1.2; split is the
    /// default, monolithic exists as an ablation).
    pub fn counter_mode(mut self, mode: triad_sim::config::CounterMode) -> Self {
        self.config.security.counter_mode = mode;
        self
    }

    /// Sets the counter-persistence policy (Osiris-style relaxation;
    /// see [`CounterPersistence`]).
    pub fn counter_persistence(mut self, policy: CounterPersistence) -> Self {
        self.counter_persistence = policy;
        self
    }

    /// Seeds key derivation (deterministic runs).
    pub fn key_seed(mut self, seed: u64) -> Self {
        self.key_seed = seed;
        self
    }

    /// Builds the engine, initialising both region trees over the
    /// all-zero NVM image.
    ///
    /// # Errors
    ///
    /// Returns [`SecureMemoryError::Config`] if the configuration fails
    /// validation.
    pub fn build(self) -> Result<SecureMemory> {
        if let CounterPersistence::Osiris { interval } = self.counter_persistence {
            if interval == 0 {
                return Err(SecureMemoryError::Config(
                    "osiris interval must be at least 1".to_string(),
                ));
            }
            if self.scheme.persisted_bmt_levels() < 1 {
                return Err(SecureMemoryError::Config(format!(
                    "osiris counter relaxation needs a persisted BMT level 1                      as its recovery oracle; scheme {} does not persist it",
                    self.scheme
                )));
            }
        }
        SecureMemory::new(
            self.config,
            self.scheme,
            self.key_policy,
            self.counter_persistence,
            self.key_seed,
        )
    }
}

fn derive_key(seed: u64, purpose: u64) -> [u8; 16] {
    let mut k = [0u8; 16];
    let mut x = triad_sim::rng::SplitMix64::new(seed ^ purpose.wrapping_mul(0x9E37_79B9));
    k[..8].copy_from_slice(&x.next_u64().to_le_bytes());
    k[8..].copy_from_slice(&x.next_u64().to_le_bytes());
    k
}

/// A block displaced from an on-chip structure, carrying its current
/// value. Victims are *queued* and drained iteratively at the end of
/// each top-level operation — never handled recursively — so no two
/// live copies of the same metadata block can ever diverge.
#[derive(Debug, Clone)]
pub(crate) enum EvictItem {
    Data {
        addr: BlockAddr,
        plain: Block,
        dirty: bool,
    },
    Counter {
        addr: BlockAddr,
        value: AnyCounterBlock,
        dirty: bool,
    },
    Node {
        addr: BlockAddr,
        value: NodeBuf,
        dirty: bool,
    },
    Mac {
        addr: BlockAddr,
        value: NodeBuf,
        dirty: bool,
    },
}

impl EvictItem {
    pub(crate) fn addr(&self) -> BlockAddr {
        match self {
            EvictItem::Data { addr, .. }
            | EvictItem::Counter { addr, .. }
            | EvictItem::Node { addr, .. }
            | EvictItem::Mac { addr, .. } => *addr,
        }
    }
}

/// The secure memory controller (see module docs).
#[derive(Debug)]
pub struct SecureMemory {
    pub(crate) config: SystemConfig,
    pub(crate) map: MemoryMap,
    pub(crate) scheme: PersistScheme,
    key_policy: KeyPolicy,
    key_seed: u64,
    aes_persistent: Aes128,
    aes_volatile: Aes128,
    mac_engine: MacEngine,
    pub(crate) mc: MemoryController,
    pub(crate) l3: Cache,
    pub(crate) ctr_cache: Cache,
    pub(crate) mt_cache: Cache,
    /// Plaintext of data blocks resident in L3.
    pub(crate) plain: BTreeMap<u64, Block>,
    /// Current values of counter blocks resident in the counter cache.
    pub(crate) counters: BTreeMap<u64, AnyCounterBlock>,
    /// Current values of BMT nodes resident in the MT cache.
    pub(crate) nodes: BTreeMap<u64, NodeBuf>,
    /// Current values of MAC blocks resident in the MT cache.
    pub(crate) macs: BTreeMap<u64, NodeBuf>,
    pub(crate) regs: PersistentRegisters,
    pub(crate) state: EngineState,
    pub(crate) counter_persistence: CounterPersistence,
    /// Updates since the last forced counter persist (Osiris mode).
    osiris_since: BTreeMap<u64, u8>,
    /// Non-persistent data blocks written this boot session (fresh
    /// anonymous pages read as zeros, like an OS zero page).
    np_written: BTreeSet<u64>,
    boot_count: u64,
    pub(crate) stats: SecureStats,
    pub(crate) hists: SecureHists,
    /// Structured event tracing; `None` (the default) costs nothing.
    pub(crate) events: Option<SharedEventSink>,
    pub(crate) clock: Time,
    /// Victims awaiting their downstream write-back (see [`EvictItem`]).
    pub(crate) evict_queue: Vec<EvictItem>,
    /// Blocks whose persists are deferred to the next epoch boundary
    /// (`None` = epoch persistency inactive; see
    /// [`SecureMemory::begin_epoch`]).
    pub(crate) epoch: Option<Vec<BlockAddr>>,
    /// An open write batch: atomic persists triggered while this is
    /// `Some` stage into the pending set instead of running the scalar
    /// register/WPQ protocol per write (see [`crate::batch`]).
    pub(crate) batch: Option<PendingBatch>,
    /// Prefetch planner fed by queued write batches.
    pub(crate) prefetcher: BatchPrefetcher,
    /// Test hook: crash after this many further WPQ copies inside
    /// atomic persists.
    pub(crate) crash_after_wpq_writes: Option<u64>,
    /// Test hook: crash instead of performing the n-th further
    /// durability point (persist/flush write-back, epoch member flush,
    /// one batch member apply).
    pub(crate) crash_after_persists: Option<u64>,
}

impl SecureMemory {
    fn new(
        config: SystemConfig,
        scheme: PersistScheme,
        key_policy: KeyPolicy,
        counter_persistence: CounterPersistence,
        key_seed: u64,
    ) -> Result<Self> {
        config.validate().map_err(SecureMemoryError::Config)?;
        let map = MemoryMap::new(&config);
        let mut engine = SecureMemory {
            aes_persistent: Aes128::new(&derive_key(key_seed, 0)),
            aes_volatile: Aes128::new(&derive_key(key_seed, 1)),
            mac_engine: MacEngine::new(derive_key(key_seed, 2)),
            mc: MemoryController::new(config.mem),
            l3: Cache::new("l3", config.l3, Replacement::Lru),
            ctr_cache: Cache::new("ctr", config.security.counter_cache, Replacement::Lru),
            mt_cache: Cache::new("mt", config.security.mt_cache, Replacement::Lru),
            plain: BTreeMap::new(),
            counters: BTreeMap::new(),
            nodes: BTreeMap::new(),
            macs: BTreeMap::new(),
            regs: PersistentRegisters::new(),
            state: EngineState::Running,
            counter_persistence,
            osiris_since: BTreeMap::new(),
            np_written: BTreeSet::new(),
            boot_count: 1,
            stats: SecureStats::default(),
            hists: SecureHists::default(),
            events: None,
            clock: Time::ZERO,
            evict_queue: Vec::new(),
            epoch: None,
            batch: None,
            prefetcher: BatchPrefetcher::new(),
            crash_after_wpq_writes: None,
            crash_after_persists: None,
            config,
            map,
            scheme,
            key_policy,
            key_seed,
        };
        // Initial tree build over the all-zero image: with the §3.3.4
        // zero sentinel this touches no counter bytes and stores only
        // the (few) non-zero upper levels.
        for kind in RegionKind::ALL {
            let layout = engine.map.region(kind).clone();
            if layout.is_empty() {
                continue;
            }
            let out =
                bmt::rebuild_from_level(engine.mc.store_mut(), &layout, &engine.mac_engine, 0);
            engine.set_root(kind, out.root);
        }
        Ok(engine)
    }

    // ----- small accessors -------------------------------------------------

    /// The persistence scheme in force.
    pub fn scheme(&self) -> PersistScheme {
        self.scheme
    }

    /// The key policy in force.
    pub fn key_policy(&self) -> KeyPolicy {
        self.key_policy
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The physical memory map.
    pub fn memory_map(&self) -> &MemoryMap {
        &self.map
    }

    /// Engine statistics.
    pub fn stats(&self) -> SecureStats {
        self.stats
    }

    /// Engine latency distributions.
    pub fn histograms(&self) -> &SecureHists {
        &self.hists
    }

    /// Routes structured events (WPQ lifecycle, metadata evictions,
    /// crash and recovery phases) from the engine and its memory
    /// controller into `sink`. Tracing is off until this is called.
    pub fn set_event_sink(&mut self, sink: SharedEventSink) {
        self.mc.set_event_sink(sink.clone());
        self.events = Some(sink);
    }

    /// Memory-controller statistics (NVM traffic, WPQ behaviour).
    pub fn mem_stats(&self) -> triad_mem::MemStats {
        self.mc.stats()
    }

    /// Per-block NVM wear statistics (physical drains).
    pub fn wear(&self) -> &triad_mem::WearTracker {
        self.mc.wear()
    }

    /// The raw NVM image — the attacker's view.
    pub fn nvm_image(&self) -> &SparseStore {
        self.mc.store()
    }

    /// Mutable NVM image, for tamper injection in security tests.
    pub fn nvm_image_mut(&mut self) -> &mut SparseStore {
        self.mc.store_mut()
    }

    /// The current boot session counter.
    pub fn session(&self) -> u32 {
        self.regs.session
    }

    /// The on-chip root node of a region's BMT.
    pub fn root(&self, kind: RegionKind) -> NodeBuf {
        match kind {
            RegionKind::Persistent => self.regs.persistent_root,
            RegionKind::NonPersistent => self.regs.non_persistent_root,
        }
    }

    fn set_root(&mut self, kind: RegionKind, root: NodeBuf) {
        match kind {
            RegionKind::Persistent => self.regs.persistent_root = root,
            RegionKind::NonPersistent => self.regs.non_persistent_root = root,
        }
    }

    /// Bounds of the persistent region's data area.
    pub fn persistent_region(&self) -> RegionHandle {
        let r = self.map.persistent();
        RegionHandle {
            start: r.data_base(),
            bytes: r.data_bytes(),
        }
    }

    /// Bounds of the non-persistent region's data area.
    pub fn non_persistent_region(&self) -> RegionHandle {
        let r = self.map.non_persistent();
        RegionHandle {
            start: r.data_base(),
            bytes: r.data_bytes(),
        }
    }

    /// Arms the crash hook: the engine will crash after `n` further
    /// WPQ copies performed inside atomic persists (0 = before the
    /// next one). Used by crash-consistency tests.
    ///
    /// Legacy arming API: re-arming silently overwrites (sweep loops
    /// rely on that), and it may be combined with
    /// [`SecureMemory::inject_crash_after_persists`] — precedence is
    /// whichever-fires-first-wins, and the first fire disarms every
    /// other armed hook so the loser can never fire spuriously after
    /// recovery. New code should prefer the typed
    /// [`SecureMemory::arm_crash`], which rejects conflicting arming.
    pub fn inject_crash_after_wpq_writes(&mut self, n: u64) {
        self.crash_after_wpq_writes = Some(n);
    }

    /// Arms the persist-boundary crash hook: the engine will crash
    /// *instead of* performing the `n`-th further durability point
    /// (0 = the very next one). A durability point is a data
    /// write-back that would make a block durable: a non-epoch
    /// [`SecureMemory::persist_block`], a dirty
    /// [`SecureMemory::flush_block`], one deferred member flush
    /// inside [`SecureMemory::end_epoch`], or one member apply inside
    /// [`SecureMemory::persist_batch`] (a batch of *n* members spans
    /// *n* boundaries, exactly like the scalar walk it replaces). Used
    /// by crash-consistency drivers that enumerate every boundary of a
    /// fixed history (the KV crash-equivalence suite).
    ///
    /// [`SecureMemory::persist_batch`]: SecureMemory::persist_batch
    ///
    /// Legacy arming API with the same overwrite/precedence semantics
    /// as [`SecureMemory::inject_crash_after_wpq_writes`]; prefer
    /// [`SecureMemory::arm_crash`] in new code.
    pub fn inject_crash_after_persists(&mut self, n: u64) {
        self.crash_after_persists = Some(n);
    }

    /// The crash hook currently armed, if any. When both legacy hooks
    /// were armed through the `inject_*` API this reports the
    /// persist-boundary hook (the one that fires at the coarser
    /// boundary), but the runtime precedence is always
    /// whichever-fires-first-wins.
    pub fn armed_crash_hook(&self) -> Option<CrashHookKind> {
        if self.crash_after_persists.is_some() {
            Some(CrashHookKind::PersistBoundary)
        } else if self.crash_after_wpq_writes.is_some() {
            Some(CrashHookKind::WpqWrite)
        } else {
            None
        }
    }

    /// Typed crash-hook arming: arms `kind` to fire after `n` further
    /// trigger points, like the legacy `inject_*` pair, but rejects
    /// arming while **any** hook is still armed — conflicting re-arms
    /// were previously silent and their precedence undefined. The
    /// defined precedence is whichever-fires-first-wins: the first
    /// hook to fire disarms all others.
    ///
    /// # Errors
    ///
    /// [`SecureMemoryError::CrashHookArmed`] when a hook (of either
    /// kind) is already armed; disarm with
    /// [`SecureMemory::disarm_crash_hooks`] first.
    pub fn arm_crash(&mut self, kind: CrashHookKind, n: u64) -> Result<()> {
        if let Some(existing) = self.armed_crash_hook() {
            return Err(SecureMemoryError::CrashHookArmed {
                existing,
                requested: kind,
            });
        }
        match kind {
            CrashHookKind::PersistBoundary => self.crash_after_persists = Some(n),
            CrashHookKind::WpqWrite => self.crash_after_wpq_writes = Some(n),
        }
        Ok(())
    }

    /// Disarms every armed crash hook (idempotent).
    pub fn disarm_crash_hooks(&mut self) {
        self.crash_after_persists = None;
        self.crash_after_wpq_writes = None;
    }

    /// Consumes one durability point from the persist-boundary crash
    /// hook. Returns `true` when the armed crash fired: the engine is
    /// already in the crashed state and the caller must abandon the
    /// persist and surface [`SecureMemoryError::NeedsRecovery`].
    pub(crate) fn persist_boundary_crash(&mut self, now: Time) -> bool {
        match self.crash_after_persists {
            Some(0) => {
                // First fire wins: a concurrently armed WPQ-write hook
                // must not fire spuriously after recovery.
                self.disarm_crash_hooks();
                emit(
                    &self.events,
                    now,
                    "crash",
                    &[("injected", true.into()), ("at", "persist_boundary".into())],
                );
                self.crash();
                true
            }
            Some(left) => {
                self.crash_after_persists = Some(left - 1);
                false
            }
            None => false,
        }
    }

    /// The internal clock of the convenience (untimed) API.
    pub fn now(&self) -> Time {
        self.clock
    }

    pub(crate) fn split_counters(&self) -> bool {
        self.config.security.counter_mode == triad_sim::config::CounterMode::Split
    }

    pub(crate) fn aes_for(&self, kind: RegionKind) -> &Aes128 {
        match (self.key_policy, kind) {
            (KeyPolicy::SessionCounter, _) => &self.aes_persistent,
            (KeyPolicy::DualKey, RegionKind::Persistent) => &self.aes_persistent,
            (KeyPolicy::DualKey, RegionKind::NonPersistent) => &self.aes_volatile,
        }
    }

    fn session_for(&self, kind: RegionKind) -> u32 {
        match (self.key_policy, kind) {
            // §3.3.2: persistent data always uses session 0 so it stays
            // decryptable across boots; non-persistent data uses the
            // current boot session.
            (KeyPolicy::SessionCounter, RegionKind::Persistent) => 0,
            (KeyPolicy::SessionCounter, RegionKind::NonPersistent) => self.regs.session,
            (KeyPolicy::DualKey, _) => 0,
        }
    }

    pub(crate) fn layout(&self, kind: RegionKind) -> &RegionLayout {
        self.map.region(kind)
    }

    pub(crate) fn check_running(&self) -> Result<()> {
        match self.state {
            EngineState::Running | EngineState::PersistentPoisoned => Ok(()),
            EngineState::Crashed => Err(SecureMemoryError::NeedsRecovery),
        }
    }

    // ----- cache wrappers: victims are queued, never handled inline --------

    pub(crate) fn l3_touch(&mut self, block: BlockAddr, write: bool) -> bool {
        let out = self.l3.access(block, write);
        if let Some(v) = out.victim {
            let plain = self.plain.remove(&v.addr.0).unwrap_or([0; BLOCK_BYTES]);
            self.evict_queue.push(EvictItem::Data {
                addr: v.addr,
                plain,
                dirty: v.dirty,
            });
        }
        out.hit
    }

    fn ctr_touch(&mut self, block: BlockAddr, write: bool) -> bool {
        let out = self.ctr_cache.access(block, write);
        if let Some(v) = out.victim {
            if let Some(value) = self.counters.remove(&v.addr.0) {
                self.evict_queue.push(EvictItem::Counter {
                    addr: v.addr,
                    value,
                    dirty: v.dirty,
                });
            }
        }
        out.hit
    }

    fn mt_touch(&mut self, block: BlockAddr, write: bool) -> bool {
        let out = self.mt_cache.access(block, write);
        if let Some(v) = out.victim {
            if let Some(value) = self.nodes.remove(&v.addr.0) {
                self.evict_queue.push(EvictItem::Node {
                    addr: v.addr,
                    value,
                    dirty: v.dirty,
                });
            } else if let Some(value) = self.macs.remove(&v.addr.0) {
                self.evict_queue.push(EvictItem::Mac {
                    addr: v.addr,
                    value,
                    dirty: v.dirty,
                });
            }
        }
        out.hit
    }

    /// Pulls a still-queued victim back on chip (a fetch racing its own
    /// pending write-back must see the newest value, not stale NVM).
    pub(crate) fn reclaim(&mut self, addr: BlockAddr) -> Option<EvictItem> {
        let pos = self.evict_queue.iter().position(|e| e.addr() == addr)?;
        Some(self.evict_queue.remove(pos))
    }

    /// Drains the eviction queue: every dirty victim is written to NVM
    /// and its parent's hash slot refreshed (the §3.2 lazy-propagation
    /// discipline). Handlers may queue further victims; the loop runs
    /// until quiescence.
    pub(crate) fn drain_evictions(&mut self, now: Time) -> Result<()> {
        self.hists
            .evict_queue_depth
            .record(self.evict_queue.len() as u64);
        while let Some(item) = self.evict_queue.pop() {
            if self.events.is_some() {
                let kind = match &item {
                    EvictItem::Data { dirty, .. } if *dirty => Some("data"),
                    EvictItem::Counter { dirty, .. } if *dirty => Some("counter"),
                    EvictItem::Node { dirty, .. } if *dirty => Some("node"),
                    EvictItem::Mac { dirty, .. } if *dirty => Some("mac"),
                    _ => None,
                };
                if let Some(kind) = kind {
                    emit(
                        &self.events,
                        now,
                        "meta_evict",
                        &[("kind", kind.into()), ("addr", item.addr().0.into())],
                    );
                }
            }
            match item {
                EvictItem::Data { addr, plain, dirty } => {
                    if dirty {
                        self.writeback_data(addr, plain, now, false)?;
                    }
                }
                EvictItem::Counter { addr, value, dirty } => {
                    if !dirty {
                        continue;
                    }
                    let kind = self.map.region_of(addr.base()).ok_or_else(|| {
                        SecureMemoryError::internal(format!(
                            "queued counter block {addr} is outside every region"
                        ))
                    })?;
                    let leaf = self.layout(kind).leaf_index(addr);
                    let bytes = value.to_bytes();
                    self.mc.write(addr, bytes, now);
                    self.batch_refresh(addr, bytes);
                    self.stats.counter_writes_evict += 1;
                    let h = bmt::leaf_hash(&self.mac_engine, kind, leaf, &bytes);
                    self.bump_parent_slot(kind, 0, leaf, h, now)?;
                }
                EvictItem::Node { addr, value, dirty } => {
                    if !dirty {
                        continue;
                    }
                    let kind = self.map.region_of(addr.base()).ok_or_else(|| {
                        SecureMemoryError::internal(format!(
                            "queued BMT node {addr} is outside every region"
                        ))
                    })?;
                    let layout = self.layout(kind);
                    let BlockRole::BmtNode(level) = layout.role_of(addr) else {
                        unreachable!("queued node at {addr} is not a BMT node");
                    };
                    let index = addr - layout.bmt_level_start[level as usize - 1];
                    self.mc.write(addr, value.0, now);
                    self.batch_refresh(addr, value.0);
                    self.stats.node_writes_evict += 1;
                    let h = bmt::node_hash(
                        &self.mac_engine,
                        NodeId {
                            region: kind,
                            level,
                            index,
                        },
                        &value.0,
                    );
                    self.bump_parent_slot(kind, level, index, h, now)?;
                }
                EvictItem::Mac { addr, value, dirty } => {
                    if dirty {
                        self.mc.write(addr, value.0, now);
                        self.batch_refresh(addr, value.0);
                        self.stats.mac_writes_evict += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Updates the parent slot of node `(level, index)` after its NVM
    /// copy changed (lazy propagation: the §3.2 eviction discipline).
    fn bump_parent_slot(
        &mut self,
        kind: RegionKind,
        level: u8,
        index: u64,
        hash: Mac64,
        now: Time,
    ) -> Result<()> {
        let geom = self.layout(kind).geometry.clone();
        let (p_level, p_index) = geom.parent(level, index);
        let slot = geom.child_slot(index);
        if p_level == geom.root_level() {
            let mut root = self.root(kind);
            root.set_slot(slot, hash);
            self.set_root(kind, root);
            return Ok(());
        }
        self.ensure_node(kind, p_level, p_index, now)?;
        let addr = self
            .layout(kind)
            .bmt_node_addr(p_level, p_index)
            .ok_or_else(|| {
                SecureMemoryError::internal(format!(
                    "BMT parent ({p_level}, {p_index}) has no in-memory address"
                ))
            })?;
        let entry = self.nodes.get_mut(&addr.0).ok_or_else(|| {
            SecureMemoryError::internal(format!("ensure_node left no resident node at {addr}"))
        })?;
        entry.set_slot(slot, hash);
        self.mt_touch(addr, true);
        Ok(())
    }

    // ----- metadata fetch with verification ---------------------------------

    /// Returns the current value of BMT node `(level, index)`, fetching
    /// and verifying it from NVM if it is not resident on chip.
    fn ensure_node(
        &mut self,
        kind: RegionKind,
        level: u8,
        index: u64,
        now: Time,
    ) -> Result<(NodeBuf, Time)> {
        let geom_root = self.layout(kind).geometry.root_level();
        if level == geom_root {
            return Ok((self.root(kind), now));
        }
        let addr = self
            .layout(kind)
            .bmt_node_addr(level, index)
            .ok_or_else(|| {
                SecureMemoryError::internal(format!(
                    "BMT node ({level}, {index}) below root has no in-memory address"
                ))
            })?;
        if let Some(buf) = self.nodes.get(&addr.0) {
            let buf = *buf;
            let lat = self.mt_cache.latency();
            self.mt_touch(addr, false);
            return Ok((buf, now + lat));
        }
        // A pending write-back holds the newest value.
        if let Some(EvictItem::Node { value, dirty, .. }) = self.reclaim(addr) {
            self.nodes.insert(addr.0, value);
            self.mt_touch(addr, dirty);
            return Ok((value, now + self.mt_cache.latency()));
        }
        // Fetch from NVM and verify against the parent. A block staged
        // in an open batch is forwarded from the staging buffer: its
        // NVM copy is stale until the batch commits.
        let (bytes, t) = match self.batch_forward(addr) {
            Some(fwd) => (fwd, now),
            None => self.mc.read(addr, now),
        };
        self.stats.node_reads += 1;
        let h = bmt::node_hash(
            &self.mac_engine,
            NodeId {
                region: kind,
                level,
                index,
            },
            &bytes,
        );
        let geom = self.layout(kind).geometry.clone();
        let (p_level, p_index) = geom.parent(level, index);
        let slot = geom.child_slot(index);
        let (parent, tp) = self.ensure_node(kind, p_level, p_index, now)?;
        if parent.slot(slot) != h {
            return Err(SecureMemoryError::IntegrityViolation {
                kind: IntegrityKind::BmtNode,
                block: addr,
            });
        }
        let buf = NodeBuf(bytes);
        self.nodes.insert(addr.0, buf);
        self.mt_touch(addr, false);
        let done = t.max(tp) + self.config.security.hash_latency;
        self.hists.node_fetch_ns.record(done.since(now).as_ns());
        Ok((buf, done))
    }

    fn put_node(
        &mut self,
        kind: RegionKind,
        level: u8,
        index: u64,
        buf: NodeBuf,
        dirty: bool,
    ) -> Result<()> {
        if level == self.layout(kind).geometry.root_level() {
            self.set_root(kind, buf);
            return Ok(());
        }
        let addr = self
            .layout(kind)
            .bmt_node_addr(level, index)
            .ok_or_else(|| {
                SecureMemoryError::internal(format!(
                    "BMT node ({level}, {index}) below root has no in-memory address"
                ))
            })?;
        self.nodes.insert(addr.0, buf);
        self.mt_touch(addr, dirty);
        Ok(())
    }

    /// Returns the current counter block for leaf `leaf`, fetching and
    /// verifying from NVM on a counter-cache miss. Handles the §3.3.4
    /// lazy first-touch of non-persistent counters.
    fn ensure_counter(
        &mut self,
        kind: RegionKind,
        leaf: u64,
        now: Time,
    ) -> Result<(AnyCounterBlock, Time)> {
        let addr = self.layout(kind).counter_start + leaf;
        if let Some(cb) = self.counters.get(&addr.0) {
            let cb = *cb;
            let lat = self.ctr_cache.latency();
            self.ctr_touch(addr, false);
            return Ok((cb, now + lat));
        }
        if let Some(EvictItem::Counter { value, dirty, .. }) = self.reclaim(addr) {
            self.counters.insert(addr.0, value);
            self.ctr_touch(addr, dirty);
            return Ok((value, now + self.ctr_cache.latency()));
        }
        let (bytes, t) = match self.batch_forward(addr) {
            Some(fwd) => (fwd, now),
            None => self.mc.read(addr, now),
        };
        self.stats.counter_reads += 1;
        let h = bmt::leaf_hash(&self.mac_engine, kind, leaf, &bytes);
        let geom = self.layout(kind).geometry.clone();
        let (p_level, p_index) = geom.parent(0, leaf);
        let slot = geom.child_slot(leaf);
        let (parent, tp) = self.ensure_node(kind, p_level, p_index, now)?;
        let expected = parent.slot(slot);
        let split = self.split_counters();
        let cb = if expected == h {
            AnyCounterBlock::from_bytes(split, &bytes)
        } else if expected.is_zero() && kind == RegionKind::NonPersistent {
            // First touch after a crash: the stale NVM counter is
            // discarded and the block restarts from zero (§3.3.4).
            self.stats.lazy_counter_inits += 1;
            AnyCounterBlock::fresh(split)
        } else if let Some(recovered) = self.osiris_search(kind, leaf, &bytes, expected, now)? {
            // Osiris: the stale counter was reconstructed from the
            // strictly persisted MACs and validated against the tree.
            self.mc.write(addr, recovered.to_bytes(), now);
            self.stats.counter_writes_persist += 1;
            recovered
        } else {
            return Err(SecureMemoryError::IntegrityViolation {
                kind: IntegrityKind::Counter,
                block: addr,
            });
        };
        self.counters.insert(addr.0, cb);
        self.ctr_touch(addr, false);
        let done = t.max(tp) + self.config.security.hash_latency;
        self.hists.counter_fetch_ns.record(done.since(now).as_ns());
        Ok((cb, done))
    }

    /// Osiris counter reconstruction (Ye et al., MICRO'18 — the
    /// relaxation the paper's §6 cites as orthogonal): a counter block
    /// whose hash mismatches its (strictly persisted) BMT parent slot
    /// is reconstructed by trying up to `interval` consecutive counter
    /// values per data block against the strictly persisted MACs, then
    /// validated as a whole against the parent slot. Returns
    /// `Ok(None)` when reconstruction is impossible (true tampering,
    /// or Osiris inactive).
    fn osiris_search(
        &mut self,
        kind: RegionKind,
        leaf: u64,
        stored: &Block,
        expected: Mac64,
        now: Time,
    ) -> Result<Option<AnyCounterBlock>> {
        let CounterPersistence::Osiris { interval } = self.counter_persistence else {
            return Ok(None);
        };
        if kind != RegionKind::Persistent {
            return Ok(None);
        }
        let layout = self.layout(kind).clone();
        let split = self.split_counters();
        let mut cb = AnyCounterBlock::from_bytes(split, stored);
        let coverage = layout.counter_coverage;
        for s in 0..coverage as usize {
            let data_index = leaf * coverage + s as u64;
            if data_index >= layout.data_blocks {
                break;
            }
            let (mac_buf, _) = self.ensure_mac_block(kind, data_index, now)?;
            let tag = mac_buf.slot((data_index % 8) as usize);
            if tag.is_zero() {
                continue; // never written: stored (zero) counter stands
            }
            let block = layout.data_start + data_index;
            let (ct, _) = self.mc.read(block, now);
            let mut trial = cb;
            let mut found = false;
            for _ in 0..=interval {
                let pair = trial.pair(s);
                let iv = self.data_iv(kind, block, pair.major, pair.minor);
                if self.data_tag(kind, block, &ct, &iv) == tag {
                    cb = trial;
                    found = true;
                    break;
                }
                if trial.increment(s) == IncrementOutcome::MajorOverflow {
                    // A lost page re-encryption cannot be searched for;
                    // give up on this block.
                    break;
                }
            }
            if !found {
                return Ok(None);
            }
        }
        let bytes = cb.to_bytes();
        let h = bmt::leaf_hash(&self.mac_engine, kind, leaf, &bytes);
        if h == expected {
            self.stats.osiris_recoveries += 1;
            Ok(Some(cb))
        } else {
            Ok(None)
        }
    }

    /// Returns the MAC block for data index `data_index` (8 tags per
    /// block), fetching from NVM on a miss. MAC blocks are keyed tags
    /// and need no tree verification.
    fn ensure_mac_block(
        &mut self,
        kind: RegionKind,
        data_index: u64,
        now: Time,
    ) -> Result<(NodeBuf, Time)> {
        let addr = self.layout(kind).mac_start + data_index / 8;
        if let Some(buf) = self.macs.get(&addr.0) {
            let buf = *buf;
            let lat = self.mt_cache.latency();
            self.mt_touch(addr, false);
            return Ok((buf, now + lat));
        }
        if let Some(EvictItem::Mac { value, dirty, .. }) = self.reclaim(addr) {
            self.macs.insert(addr.0, value);
            self.mt_touch(addr, dirty);
            return Ok((value, now + self.mt_cache.latency()));
        }
        let (bytes, t) = match self.batch_forward(addr) {
            Some(fwd) => (fwd, now),
            None => self.mc.read(addr, now),
        };
        self.stats.mac_reads += 1;
        let buf = NodeBuf(bytes);
        self.macs.insert(addr.0, buf);
        self.mt_touch(addr, false);
        self.hists.mac_fetch_ns.record(t.since(now).as_ns());
        Ok((buf, t))
    }

    pub(crate) fn data_iv(&self, kind: RegionKind, block: BlockAddr, major: u64, minor: u8) -> Iv {
        Iv {
            page: block.page(),
            offset: block.page_offset() as u8,
            major,
            minor,
            session: self.session_for(kind),
        }
    }

    fn data_tag(&self, kind: RegionKind, block: BlockAddr, ct: &Block, iv: &Iv) -> Mac64 {
        let _ = kind;
        let t = self.mac_engine.data_mac(block.0, ct, iv);
        // Zero is reserved as the "never written" marker.
        if t.is_zero() {
            Mac64(1)
        } else {
            t
        }
    }

    // ----- write-back / persist path ----------------------------------------

    /// Encrypts and writes `block` to NVM, updating counter, MAC and
    /// tree according to the region and scheme. `_clwb` marks
    /// clwb-style persists (eviction callers pass the captured
    /// plaintext of a line that is already gone from L3).
    pub(crate) fn writeback_data(
        &mut self,
        block: BlockAddr,
        plaintext: Block,
        now: Time,
        _clwb: bool,
    ) -> Result<Time> {
        let kind = self
            .map
            .data_region_of(block)
            .ok_or(SecureMemoryError::OutOfRange { addr: block.base() })?;
        let layout = self.layout(kind).clone();
        let data_index = layout.data_index(block);
        let coverage = layout.counter_coverage;
        let leaf = data_index / coverage;
        let slot = (data_index % coverage) as usize;

        // 1. Advance the counter.
        let (mut cb, mut t) = self.ensure_counter(kind, leaf, now)?;
        let old_cb = cb;
        let outcome = cb.increment(slot);
        self.counters.insert((layout.counter_start + leaf).0, cb);
        self.ctr_touch(layout.counter_start + leaf, true);

        // 2. Encrypt and MAC the block. An open batch may have
        //    precomputed this pad from the batched AES pass; a miss
        //    (counter misprediction) falls back to the scalar engine.
        let pair = cb.pair(slot);
        let iv = self.data_iv(kind, block, pair.major, pair.minor);
        let ct = match self.batch_pad(block, pair.major, pair.minor) {
            Some(pad) => {
                let mut ct = [0u8; BLOCK_BYTES];
                for (i, byte) in ct.iter_mut().enumerate() {
                    *byte = plaintext[i] ^ pad[i];
                }
                ct
            }
            None => encrypt_block(self.aes_for(kind), &iv, &plaintext),
        };
        let tag = self.data_tag(kind, block, &ct, &iv);
        let (mut mac_buf, t_mac) = self.ensure_mac_block(kind, data_index, now)?;
        mac_buf.set_slot((data_index % 8) as usize, tag);
        let mac_addr = layout.mac_start + data_index / 8;
        self.macs.insert(mac_addr.0, mac_buf);
        self.mt_touch(mac_addr, true);
        t = t.max(t_mac) + self.config.security.hash_latency;

        // 3. Minor overflow: the whole page re-encrypts under the new
        //    major counter (§2.1.2).
        if outcome == IncrementOutcome::MajorOverflow {
            self.stats.page_reencryptions += 1;
            let persist_macs = kind == RegionKind::Persistent && self.scheme.persists_metadata();
            t = self
                .reencrypt_page(kind, leaf, slot, &old_cb, &cb, persist_macs, now)?
                .max(t);
        }

        // 4. Propagate to the tree and to NVM.
        let counter_addr = layout.counter_start + leaf;
        let counter_bytes = cb.to_bytes();
        let leaf_h = bmt::leaf_hash(&self.mac_engine, kind, leaf, &counter_bytes);
        self.stats.nvm_data_writes += 1;

        // Region awareness is Triad-NVM's contribution: `TriadNvm`
        // applies atomic metadata persistence only to the persistent
        // region, while `Strict` (prior work) is region-oblivious and
        // pays it for *every* NVM write — the §5.1 observation that
        // write-intensive non-persistent workloads (e.g. libquantum)
        // gain an order of magnitude from region-aware relaxation.
        let atomic = self.scheme.persists_metadata()
            && (kind == RegionKind::Persistent || self.scheme == PersistScheme::Strict);
        if atomic {
            // Update the full path to the root in on-chip state and
            // collect the strictly persisted levels.
            let persist_levels = self
                .scheme
                .persisted_bmt_levels()
                .min(layout.geometry.root_level().saturating_sub(1));
            let (staged_nodes, new_root, t_path) =
                self.update_path(kind, leaf, leaf_h, persist_levels, now)?;
            t = t.max(t_path);
            // Osiris relaxation: skip the counter copy unless the
            // interval expired (recovery reconstructs skipped updates
            // from the MACs, §6 / Ye et al.).
            let persist_counter = match self.counter_persistence {
                CounterPersistence::Strict => true,
                CounterPersistence::Osiris { interval } => {
                    let since = self.osiris_since.entry(counter_addr.0).or_insert(0);
                    *since += 1;
                    if *since >= interval {
                        *since = 0;
                        true
                    } else {
                        self.stats.osiris_counter_skips += 1;
                        false
                    }
                }
            };
            let mut writes = vec![StagedWrite {
                addr: block,
                data: ct,
            }];
            if persist_counter {
                writes.push(StagedWrite {
                    addr: counter_addr,
                    data: counter_bytes,
                });
            }
            writes.push(StagedWrite {
                addr: mac_addr,
                data: mac_buf.0,
            });
            let node_count = staged_nodes.len() as u64;
            writes.extend(staged_nodes);
            if self.batch.is_some() {
                // Open batch: merge this member's update set into the
                // pending (last-wins) staging buffer. The cumulative
                // re-stage keeps the persistent registers holding the
                // whole replayable prefix, so the per-member root
                // advance below stays crash-safe; the coalesced WPQ
                // drain and register commit happen once in
                // `commit_batch`.
                self.stage_into_batch(kind, &writes, persist_counter, new_root);
                self.set_root(kind, new_root);
            } else {
                if persist_counter {
                    self.stats.counter_writes_persist += 1;
                }
                self.stats.atomic_persists += 1;
                self.stats.mac_writes_persist += 1;
                self.stats.node_writes_persist += node_count;
                // §3.3.5 protocol: stage → READY_BIT → WPQ copies →
                // commit. Only the persistent region's root matters for
                // recovery (the non-persistent root is rebuilt lazily
                // regardless).
                self.regs.stage(StagedUpdate {
                    writes: writes.clone(),
                    new_persistent_root: (kind == RegionKind::Persistent).then_some(new_root),
                });
                t += self
                    .config
                    .security
                    .persistent_register_latency
                    .saturating_mul(writes.len() as u64 + 1);
                emit(
                    &self.events,
                    now,
                    "atomic_persist",
                    &[
                        ("block", block.0.into()),
                        ("staged_writes", writes.len().into()),
                    ],
                );
                for w in &writes {
                    if let Some(left) = self.crash_after_wpq_writes {
                        if left == 0 {
                            // First fire wins: disarm the persist-
                            // boundary hook too.
                            self.disarm_crash_hooks();
                            emit(
                                &self.events,
                                t,
                                "crash",
                                &[("injected", true.into()), ("block", w.addr.0.into())],
                            );
                            self.crash();
                            return Err(SecureMemoryError::NeedsRecovery);
                        }
                        self.crash_after_wpq_writes = Some(left - 1);
                    }
                    t = self.mc.write(w.addr, w.data, t);
                }
                self.set_root(kind, new_root);
                self.regs.commit();
            }
            // Persisted metadata is now clean on chip (under Osiris the
            // skipped counter stays dirty until its forced persist or
            // natural eviction).
            if persist_counter {
                self.ctr_cache.flush(counter_addr);
            }
            self.mt_cache.flush(mac_addr);
            for w in writes.iter().skip(if persist_counter { 3 } else { 2 }) {
                self.mt_cache.flush(w.addr);
            }
        } else {
            // Lazy path: only the ciphertext goes to NVM now; counter,
            // MAC and tree propagate on eviction.
            t = self.mc.write(block, ct, t);
        }
        Ok(t)
    }

    /// Re-encrypts all other blocks of a page after a minor-counter
    /// overflow reset the page to a new major counter.
    #[allow(clippy::too_many_arguments)] // mirrors the hardware datapath's operands
    fn reencrypt_page(
        &mut self,
        kind: RegionKind,
        leaf: u64,
        written_slot: usize,
        old_cb: &AnyCounterBlock,
        new_cb: &AnyCounterBlock,
        persist_macs: bool,
        now: Time,
    ) -> Result<Time> {
        let layout = self.layout(kind).clone();
        let coverage = layout.counter_coverage;
        let mut t = now;
        let mut touched_macs = BTreeSet::new();
        for s in 0..coverage as usize {
            if s == written_slot {
                continue;
            }
            let data_index = leaf * coverage + s as u64;
            if data_index >= layout.data_blocks {
                break;
            }
            let block = layout.data_start + data_index;
            let (mac_buf, _) = self.ensure_mac_block(kind, data_index, now)?;
            let tag = mac_buf.slot((data_index % 8) as usize);
            // Get the plaintext: cached, fresh, or decrypt the old
            // ciphertext.
            let queued_plain = self.evict_queue.iter().find_map(|e| match e {
                EvictItem::Data { addr, plain, .. } if *addr == block => Some(*plain),
                _ => None,
            });
            let plaintext = if let Some(p) = self.plain.get(&block.0) {
                *p
            } else if let Some(p) = queued_plain {
                p
            } else if tag.is_zero() {
                [0u8; BLOCK_BYTES] // never written
            } else {
                // An open batch may hold a newer staged ciphertext for
                // this block than the (stale) NVM copy.
                let (ct_old, tr) = match self.batch_forward(block) {
                    Some(fwd) => (fwd, now),
                    None => self.mc.read(block, now),
                };
                t = t.max(tr);
                let old_pair = old_cb.pair(s);
                let iv_old = self.data_iv(kind, block, old_pair.major, old_pair.minor);
                decrypt_block(self.aes_for(kind), &iv_old, &ct_old)
            };
            let new_pair = new_cb.pair(s);
            let iv_new = self.data_iv(kind, block, new_pair.major, new_pair.minor);
            let ct_new = encrypt_block(self.aes_for(kind), &iv_new, &plaintext);
            let new_tag = self.data_tag(kind, block, &ct_new, &iv_new);
            let (mut mac_buf, _) = self.ensure_mac_block(kind, data_index, now)?;
            mac_buf.set_slot((data_index % 8) as usize, new_tag);
            let mac_addr = layout.mac_start + data_index / 8;
            self.macs.insert(mac_addr.0, mac_buf);
            self.mt_touch(mac_addr, true);
            touched_macs.insert(mac_addr.0);
            // Under an open batch the re-encrypted ciphertext of an
            // atomically-persisted region must stage (a direct write
            // would be clobbered by the batch commit or its recovery
            // replay); lazy-path regions keep the direct write.
            let atomic_here = self.scheme.persists_metadata()
                && (kind == RegionKind::Persistent || self.scheme == PersistScheme::Strict);
            if self.batch.is_some() && atomic_here {
                self.batch_stage_raw(crate::batch::WriteClass::Data, block, ct_new);
            } else {
                t = self.mc.write(block, ct_new, t);
            }
            self.stats.nvm_data_writes += 1;
        }
        if persist_macs {
            // In atomic schemes the whole page's tags must reach the
            // persistence domain with the re-encrypted data, or a crash
            // would leave new ciphertext under stale NVM tags.
            for mac_addr in touched_macs {
                if let Some(buf) = self.macs.get(&mac_addr) {
                    let data = buf.0;
                    if self.batch.is_some() {
                        self.batch_stage_raw(
                            crate::batch::WriteClass::Mac,
                            BlockAddr(mac_addr),
                            data,
                        );
                    } else {
                        t = self.mc.write(BlockAddr(mac_addr), data, t);
                        self.stats.mac_writes_persist += 1;
                    }
                    self.mt_cache.flush(BlockAddr(mac_addr));
                }
            }
        }
        Ok(t)
    }

    /// Updates the tree path above `leaf` on chip, returning the node
    /// writes to persist (levels `1..=persist_levels`) and the new root.
    fn update_path(
        &mut self,
        kind: RegionKind,
        leaf: u64,
        leaf_hash: Mac64,
        persist_levels: u8,
        now: Time,
    ) -> Result<(Vec<StagedWrite>, NodeBuf, Time)> {
        let layout = self.layout(kind).clone();
        let geom = layout.geometry.clone();
        let mut staged = Vec::new();
        let mut h = leaf_hash;
        let mut child_index = leaf;
        let mut t = now;
        for level in 1..=geom.root_level() {
            let slot = geom.child_slot(child_index);
            let index = child_index / geom.arity();
            if level == geom.root_level() {
                let mut root = self.root(kind);
                root.set_slot(slot, h);
                t += self.config.security.hash_latency;
                return Ok((staged, root, t));
            }
            let (mut buf, tn) = self.ensure_node(kind, level, index, now)?;
            buf.set_slot(slot, h);
            let persist_this = level <= persist_levels;
            self.put_node(kind, level, index, buf, !persist_this)?;
            if persist_this {
                let addr = layout.bmt_node_addr(level, index).ok_or_else(|| {
                    SecureMemoryError::internal(format!(
                        "persisted BMT node ({level}, {index}) has no in-memory address"
                    ))
                })?;
                staged.push(StagedWrite { addr, data: buf.0 });
            }
            h = bmt::node_hash(
                &self.mac_engine,
                NodeId {
                    region: kind,
                    level,
                    index,
                },
                &buf.0,
            );
            t = t.max(tn) + self.config.security.hash_latency;
            child_index = index;
        }
        unreachable!("loop returns at root level");
    }

    // ----- public timed block API -------------------------------------------

    /// Loads one 64-byte block (the L3-and-below path the private
    /// caches call on their misses). Returns plaintext and completion
    /// time.
    ///
    /// # Errors
    ///
    /// * [`SecureMemoryError::OutOfRange`] outside any data area.
    /// * [`SecureMemoryError::MacMismatch`] /
    ///   [`SecureMemoryError::IntegrityViolation`] on tampering.
    /// * [`SecureMemoryError::NeedsRecovery`] after an unrecovered
    ///   crash, [`SecureMemoryError::Unverifiable`] for a poisoned
    ///   persistent region.
    pub fn load_block(&mut self, block: BlockAddr, now: Time) -> Result<(Block, Time)> {
        self.check_running()?;
        let kind = self
            .map
            .data_region_of(block)
            .ok_or(SecureMemoryError::OutOfRange { addr: block.base() })?;
        if kind == RegionKind::Persistent && self.state == EngineState::PersistentPoisoned {
            return Err(SecureMemoryError::Unverifiable {
                reason: "persistent region was not recovered".to_string(),
            });
        }
        self.stats.loads += 1;
        if self.l3_touch(block, false) {
            self.stats.l3_load_hits += 1;
            let data = self
                .plain
                .get(&block.0)
                .copied()
                .unwrap_or([0; BLOCK_BYTES]);
            self.drain_evictions(now)?;
            let done = now + self.l3.latency();
            self.hists.op_latency_ns.record(done.since(now).as_ns());
            return Ok((data, done));
        }
        // The block may be sitting in its own pending write-back.
        if let Some(EvictItem::Data { plain, dirty, .. }) = self.reclaim(block) {
            self.plain.insert(block.0, plain);
            self.l3.access(block, dirty);
            self.drain_evictions(now)?;
            let done = now + self.l3.latency();
            self.hists.op_latency_ns.record(done.since(now).as_ns());
            return Ok((plain, done));
        }
        // Fresh non-persistent blocks read as zeros (OS zero page).
        if kind == RegionKind::NonPersistent && !self.np_written.contains(&block.0) {
            self.stats.fresh_reads += 1;
            self.plain.insert(block.0, [0; BLOCK_BYTES]);
            let (_, t) = self.mc.read(block, now);
            self.drain_evictions(now)?;
            self.hists.op_latency_ns.record(t.since(now).as_ns());
            return Ok(([0; BLOCK_BYTES], t));
        }
        let layout = self.layout(kind).clone();
        let data_index = layout.data_index(block);
        let leaf = data_index / layout.counter_coverage;
        let slot = (data_index % layout.counter_coverage) as usize;
        let (ct, t_data) = self.mc.read(block, now);
        self.stats.nvm_data_reads += 1;
        let (cb, t_ctr) = self.ensure_counter(kind, leaf, now)?;
        let (mac_buf, t_mac) = self.ensure_mac_block(kind, data_index, now)?;
        let tag = mac_buf.slot((data_index % 8) as usize);
        let pair = cb.pair(slot);
        let pair_fresh = pair.major == 0 && pair.minor == 0;
        let plaintext = if tag.is_zero() && pair_fresh {
            self.stats.fresh_reads += 1;
            [0u8; BLOCK_BYTES]
        } else {
            let iv = self.data_iv(kind, block, pair.major, pair.minor);
            let plaintext = decrypt_block(self.aes_for(kind), &iv, &ct);
            if self.data_tag(kind, block, &ct, &iv) != tag {
                return Err(SecureMemoryError::MacMismatch { block });
            }
            plaintext
        };
        self.plain.insert(block.0, plaintext);
        self.drain_evictions(now)?;
        // Decryption overlaps the data fetch (counter-mode); the MAC
        // check costs one hash after everything arrives.
        let done = t_data.max(t_ctr).max(t_mac) + self.config.security.hash_latency;
        self.hists.op_latency_ns.record(done.since(now).as_ns());
        Ok((plaintext, done))
    }

    /// Stores one full 64-byte block (write-allocate, write-back).
    /// Fast: the block is dirtied in L3 and encrypted only when it
    /// leaves the chip.
    ///
    /// # Errors
    ///
    /// Same classes as [`SecureMemory::load_block`].
    pub fn store_block(&mut self, block: BlockAddr, data: Block, now: Time) -> Result<Time> {
        self.check_running()?;
        let kind = self
            .map
            .data_region_of(block)
            .ok_or(SecureMemoryError::OutOfRange { addr: block.base() })?;
        if kind == RegionKind::Persistent && self.state == EngineState::PersistentPoisoned {
            return Err(SecureMemoryError::Unverifiable {
                reason: "persistent region was not recovered".to_string(),
            });
        }
        self.stats.stores += 1;
        if kind == RegionKind::NonPersistent {
            self.np_written.insert(block.0);
        }
        // Supersede any pending write-back of the same block.
        self.reclaim(block);
        self.plain.insert(block.0, data);
        self.l3_touch(block, true);
        self.drain_evictions(now)?;
        let done = now + self.l3.latency();
        self.hists.op_latency_ns.record(done.since(now).as_ns());
        Ok(done)
    }

    /// Persists one block (`store; clwb; sfence`): writes the data and
    /// stores it durably together with its security metadata according
    /// to the scheme. Returns the time the whole update set is inside
    /// the persistence domain.
    ///
    /// # Errors
    ///
    /// [`SecureMemoryError::NotPersistent`] if `block` is outside the
    /// persistent region, plus the classes of
    /// [`SecureMemory::load_block`].
    pub fn persist_block(&mut self, block: BlockAddr, data: Block, now: Time) -> Result<Time> {
        self.check_running()?;
        if self.map.data_region_of(block) != Some(RegionKind::Persistent) {
            return Err(SecureMemoryError::NotPersistent { addr: block.base() });
        }
        if self.state == EngineState::PersistentPoisoned {
            return Err(SecureMemoryError::Unverifiable {
                reason: "persistent region was not recovered".to_string(),
            });
        }
        self.stats.stores += 1;
        self.stats.persists += 1;
        self.reclaim(block);
        self.plain.insert(block.0, data);
        self.l3_touch(block, true);
        // Under epoch persistency (Liu et al., HPCA'18 — cited by the
        // paper as an orthogonal relaxation) the persist is deferred to
        // the epoch boundary: within an epoch only program order, not
        // durability order, is guaranteed.
        if let Some(pending) = &mut self.epoch {
            pending.push(block);
            self.drain_evictions(now)?;
            let done = now + self.l3.latency();
            self.hists
                .persist_latency_ns
                .record(done.since(now).as_ns());
            return Ok(done);
        }
        if self.persist_boundary_crash(now) {
            return Err(SecureMemoryError::NeedsRecovery);
        }
        let t = self.writeback_data(block, data, now + self.l3.latency(), true)?;
        self.l3.flush(block);
        self.drain_evictions(now)?;
        self.hists.persist_latency_ns.record(t.since(now).as_ns());
        Ok(t)
    }

    /// Begins an epoch (§6 / Liu et al.'s *epoch persistency*):
    /// subsequent [`SecureMemory::persist_block`] calls return at cache
    /// latency and their durability is deferred — and write-combined —
    /// until [`SecureMemory::end_epoch`].
    ///
    /// # Errors
    ///
    /// [`SecureMemoryError::EpochAlreadyOpen`] if an epoch is already
    /// open (nested epochs are rejected), or
    /// [`SecureMemoryError::NeedsRecovery`] after an unrecovered crash.
    pub fn begin_epoch(&mut self) -> Result<()> {
        self.check_running()?;
        if self.epoch.is_some() {
            return Err(SecureMemoryError::EpochAlreadyOpen);
        }
        self.epoch = Some(Vec::new());
        Ok(())
    }

    /// Ends the current epoch: every deferred persist (latest value per
    /// block) becomes durable with its metadata before the returned
    /// time.
    ///
    /// Under the atomic schemes with strict counters the boundary runs
    /// through the batched write path: members share one precomputed
    /// pad set, one prefetch plan and one coalesced register/WPQ
    /// commit. The Osiris relaxation keeps the scalar per-member walk
    /// (its skip bookkeeping is inherently per-write).
    ///
    /// # Errors
    ///
    /// [`SecureMemoryError::EpochNotOpen`] if no epoch is open. This
    /// used to be a silent no-op; it became a typed error when periodic
    /// flush timers started issuing `end_epoch` on a schedule, where a
    /// swallowed unbalanced close would mask a double-close bug.
    /// Callers that legitimately may or may not hold an open epoch
    /// should guard with [`SecureMemory::epoch_open`]. Otherwise the
    /// same classes as [`SecureMemory::persist_block`].
    pub fn end_epoch(&mut self, now: Time) -> Result<Time> {
        self.check_running()?;
        let Some(pending) = self.epoch.take() else {
            return Err(SecureMemoryError::EpochNotOpen);
        };
        self.stats.epochs += 1;
        // Deduplicate, keeping one flush per block (write combining —
        // the core of the epoch-persistency win). Blocks that were
        // cleanly evicted since their persist are already durable.
        let mut seen = BTreeSet::new();
        let mut members = Vec::new();
        for block in pending {
            if seen.insert(block.0) && self.l3.probe_dirty(block) {
                members.push(block);
            }
        }
        let osiris = matches!(self.counter_persistence, CounterPersistence::Osiris { .. });
        if members.is_empty() || osiris || !self.scheme.persists_metadata() {
            // Scalar boundary: per-member write-backs. (Osiris skip
            // bookkeeping is per-write; WriteBack persists no metadata
            // so there is nothing for a batch to coalesce.)
            let mut t = now;
            for block in members {
                if self.persist_boundary_crash(now) {
                    return Err(SecureMemoryError::NeedsRecovery);
                }
                let plaintext = self
                    .plain
                    .get(&block.0)
                    .copied()
                    .unwrap_or([0; BLOCK_BYTES]);
                let done = self.writeback_data(block, plaintext, t, true)?;
                self.l3.flush(block);
                t = t.max(done);
            }
            self.drain_evictions(now)?;
            return Ok(t);
        }
        // Batched boundary.
        let flushes: Vec<(BlockAddr, Block)> = members
            .iter()
            .map(|b| {
                (
                    *b,
                    self.plain.get(&b.0).copied().unwrap_or([0; BLOCK_BYTES]),
                )
            })
            .collect();
        let pads = self.precompute_batch_pads(&flushes);
        self.plan_batch_prefetch(&flushes);
        self.stats.batches += 1;
        self.stats.batch_members += flushes.len() as u64;
        self.batch = Some(PendingBatch::new(pads));
        let mut t = now;
        for (block, plaintext) in flushes {
            if self.persist_boundary_crash(now) {
                // The crash cleared the open batch; the staged prefix
                // (every fully processed member) replays at recovery —
                // the same per-member durability the scalar walk gives.
                return Err(SecureMemoryError::NeedsRecovery);
            }
            let done = match self.writeback_data(block, plaintext, t, true) {
                Ok(done) => done,
                Err(e) => {
                    // Commit the staged prefix so the on-chip roots and
                    // the NVM image agree before surfacing the error.
                    let _ = self.commit_batch(t);
                    return Err(e);
                }
            };
            self.l3.flush(block);
            t = t.max(done);
        }
        t = self.commit_batch(t)?;
        self.drain_evictions(now)?;
        Ok(t)
    }

    /// Whether an epoch is currently open.
    pub fn epoch_open(&self) -> bool {
        self.epoch.is_some()
    }

    /// Flushes an already-stored block (`clwb; sfence` without a new
    /// store). No-op if the block is not dirty on chip.
    ///
    /// # Errors
    ///
    /// Same classes as [`SecureMemory::persist_block`].
    pub fn flush_block(&mut self, block: BlockAddr, now: Time) -> Result<Time> {
        self.check_running()?;
        if !self.l3.probe_dirty(block) {
            return Ok(now + self.l3.latency());
        }
        self.stats.persists += 1;
        if self.persist_boundary_crash(now) {
            return Err(SecureMemoryError::NeedsRecovery);
        }
        let plaintext = self
            .plain
            .get(&block.0)
            .copied()
            .unwrap_or([0; BLOCK_BYTES]);
        let t = self.writeback_data(block, plaintext, now + self.l3.latency(), true)?;
        self.l3.flush(block);
        self.drain_evictions(now)?;
        self.hists.persist_latency_ns.record(t.since(now).as_ns());
        Ok(t)
    }

    // ----- convenience byte API ---------------------------------------------

    /// Reads the 64-byte block containing `addr` (untimed convenience
    /// API; advances the internal clock).
    ///
    /// # Errors
    ///
    /// Same classes as [`SecureMemory::load_block`].
    pub fn read(&mut self, addr: PhysAddr) -> Result<Block> {
        let (data, t) = self.load_block(addr.block(), self.clock)?;
        self.clock = t;
        Ok(data)
    }

    /// Writes `data` starting at `addr`, within one 64-byte block
    /// (read-modify-write for partial blocks).
    ///
    /// # Errors
    ///
    /// [`SecureMemoryError::OutOfRange`] if the write would cross a
    /// block boundary, plus the classes of
    /// [`SecureMemory::load_block`].
    pub fn write(&mut self, addr: PhysAddr, data: &[u8]) -> Result<()> {
        let offset = addr.block_offset();
        if offset + data.len() > BLOCK_BYTES {
            return Err(SecureMemoryError::OutOfRange { addr });
        }
        let block = addr.block();
        let mut buf = if data.len() == BLOCK_BYTES {
            [0u8; BLOCK_BYTES]
        } else {
            let (old, t) = self.load_block(block, self.clock)?;
            self.clock = t;
            old
        };
        buf[offset..offset + data.len()].copy_from_slice(data);
        let t = self.store_block(block, buf, self.clock)?;
        self.clock = t;
        Ok(())
    }

    /// Persists the block containing `addr` (`clwb + sfence`).
    ///
    /// # Errors
    ///
    /// Same classes as [`SecureMemory::persist_block`].
    pub fn persist(&mut self, addr: PhysAddr) -> Result<()> {
        let t = self.flush_block(addr.block(), self.clock)?;
        self.clock = t;
        Ok(())
    }

    // ----- crash and recovery ------------------------------------------------

    /// Simulates a power loss: every volatile structure (caches,
    /// plaintext, on-chip metadata values, WPQ bookkeeping) vanishes;
    /// the NVM image and the persistent registers survive.
    pub fn crash(&mut self) {
        emit(&self.events, self.clock, "crash", &[]);
        self.l3.lose_all();
        self.ctr_cache.lose_all();
        self.mt_cache.lose_all();
        self.plain.clear();
        self.counters.clear();
        self.nodes.clear();
        self.macs.clear();
        self.np_written.clear();
        self.evict_queue.clear();
        self.epoch = None;
        self.batch = None;
        self.osiris_since.clear();
        self.mc.crash();
        self.state = EngineState::Crashed;
    }

    /// Recovers after a crash: replays any staged update (READY_BIT),
    /// verifies/rebuilds the persistent region's tree from the scheme's
    /// persist level, lazily reinitialises the non-persistent region
    /// (§3.3.4), and bumps the session counter (§3.3.2).
    ///
    /// # Errors
    ///
    /// Returns [`SecureMemoryError::Unverifiable`] when the persistent
    /// region exists but its scheme persists no metadata (`WriteBack`);
    /// the report is still available via the error-free path in that
    /// case — callers that want to continue with a poisoned persistent
    /// region can inspect the returned report instead, which is why
    /// verification failure is reported *in* the report rather than as
    /// an error.
    pub fn recover(&mut self) -> Result<RecoveryReport> {
        if self.state == EngineState::Running {
            return Ok(RecoveryReport {
                persistent_recovered: true,
                session: self.regs.session,
                ..RecoveryReport::default()
            });
        }
        let mut report = RecoveryReport::default();
        emit(&self.events, self.clock, "recovery_begin", &[]);
        // 1. Replay a torn atomic update (§3.3.5).
        if let Some(staged) = self.regs.take_staged() {
            for w in &staged.writes {
                self.mc.store_mut().write(w.addr, w.data);
            }
            if let Some(root) = staged.new_persistent_root {
                self.regs.persistent_root = root;
            }
            report.replayed_staged_writes = staged.writes.len();
            emit(
                &self.events,
                self.clock,
                "recovery_replay",
                &[("staged_writes", staged.writes.len().into())],
            );
        }
        // 2. Persistent region: rebuild and verify.
        let p_layout = self.map.persistent().clone();
        let mut poisoned = false;
        if !p_layout.is_empty() {
            match self.scheme.recovery_start_level() {
                None => {
                    report.persistent_recovered = false;
                    report.unverifiable.push(CorruptRange {
                        start: p_layout.data_base(),
                        bytes: p_layout.data_bytes(),
                    });
                    poisoned = true;
                }
                Some(level) => {
                    let from = level.min(p_layout.geometry.root_level().saturating_sub(1));
                    let out = bmt::rebuild_from_level(
                        self.mc.store_mut(),
                        &p_layout,
                        &self.mac_engine,
                        from,
                    );
                    report.persistent_blocks_read = out.blocks_read;
                    if out.root == self.regs.persistent_root {
                        report.persistent_recovered = true;
                    } else {
                        let pin = crate::recovery::pinpoint(
                            self.mc.store(),
                            &p_layout,
                            &self.mac_engine,
                            from,
                            &self.regs.persistent_root,
                        );
                        report.persistent_recovered = pin.recoverable;
                        report.corrupt_metadata = pin.corrupt_nodes;
                        report.unverifiable = pin.unverifiable;
                        if pin.recoverable {
                            // Stored upper levels were corrupt but the
                            // rebuild from below already rewrote them.
                            let out = bmt::rebuild_from_level(
                                self.mc.store_mut(),
                                &p_layout,
                                &self.mac_engine,
                                0,
                            );
                            report.persistent_blocks_read += out.blocks_read;
                            debug_assert_eq!(out.root, self.regs.persistent_root);
                        } else {
                            poisoned = true;
                        }
                    }
                }
            }
        } else {
            report.persistent_recovered = true;
        }
        // 3. Non-persistent region: zero L1, rebuild above (§3.3.4).
        let np_layout = self.map.non_persistent().clone();
        if !np_layout.is_empty() {
            let l1_count = np_layout.geometry.nodes_at_level(1);
            if np_layout.geometry.root_level() > 1 {
                for i in 0..l1_count {
                    let addr = np_layout.bmt_node_addr(1, i).ok_or_else(|| {
                        SecureMemoryError::internal(format!(
                            "non-persistent BMT L1 node {i} has no in-memory address"
                        ))
                    })?;
                    self.mc.store_mut().write(addr, [0u8; BLOCK_BYTES]);
                }
                report.non_persistent_blocks_written = l1_count;
                let out =
                    bmt::rebuild_from_level(self.mc.store_mut(), &np_layout, &self.mac_engine, 1);
                report.non_persistent_blocks_read = out.blocks_read;
                self.regs.non_persistent_root = out.root;
            } else {
                // Degenerate tree: the root's slots are the leaf
                // sentinels; reset it directly.
                self.regs.non_persistent_root = NodeBuf::zeroed();
            }
        }
        // 4. New boot session (§3.3.2).
        self.boot_count += 1;
        self.regs.session += 1;
        if self.key_policy == KeyPolicy::DualKey {
            self.aes_volatile = Aes128::new(&derive_key(self.key_seed, 0x1000 + self.boot_count));
        }
        report.session = self.regs.session;
        report.estimated_duration = Duration::from_ns(100).saturating_mul(
            report.persistent_blocks_read
                + report.non_persistent_blocks_read
                + report.non_persistent_blocks_written,
        );
        self.state = if poisoned {
            EngineState::PersistentPoisoned
        } else {
            EngineState::Running
        };
        emit(
            &self.events,
            self.clock,
            "recovery_end",
            &[
                ("recovered", report.persistent_recovered.into()),
                ("blocks_read", report.persistent_blocks_read.into()),
                ("session", u64::from(report.session).into()),
            ],
        );
        Ok(report)
    }

    /// Reformats the persistent region after an unrecoverable crash
    /// (the `WriteBack` scheme, or unverifiable corruption): all data,
    /// counters, MACs and tree levels reset to the fresh state.
    pub fn format_persistent(&mut self) {
        let layout = self.map.persistent().clone();
        let store = self.mc.store_mut();
        for b in 0..layout.region_blocks {
            store.write(layout.region_start + b, [0u8; BLOCK_BYTES]);
        }
        let out = bmt::rebuild_from_level(store, &layout, &self.mac_engine, 0);
        self.regs.persistent_root = out.root;
        if self.state == EngineState::PersistentPoisoned {
            self.state = EngineState::Running;
        }
    }

    /// Checks the engine's internal invariants, returning a list of
    /// violations (empty = consistent). Intended for tests and
    /// debugging; O(cached state + leaves), not O(memory contents).
    ///
    /// Invariants checked:
    /// 1. volatile value maps and cache residency agree 1:1,
    /// 2. every queued eviction victim is absent from the caches,
    /// 3. for every *uncached* counter block, the NVM copy's hash
    ///    matches its parent's slot (the §3.2 lazy-propagation
    ///    invariant that makes verification sound).
    pub fn validate_consistency(&self) -> Vec<String> {
        let mut problems = Vec::new();
        // 1. Map <-> cache agreement.
        for addr in self.counters.keys() {
            if !self.ctr_cache.probe(BlockAddr(*addr)) {
                problems.push(format!("counter {addr:#x} in map but not cached"));
            }
        }
        for addr in self.nodes.keys().chain(self.macs.keys()) {
            if !self.mt_cache.probe(BlockAddr(*addr)) {
                problems.push(format!("metadata {addr:#x} in map but not cached"));
            }
        }
        for addr in self.plain.keys() {
            if !self.l3.probe(BlockAddr(*addr)) {
                problems.push(format!("plaintext {addr:#x} in map but not in L3"));
            }
        }
        // 2. Queued victims are off-chip.
        for item in &self.evict_queue {
            let a = item.addr();
            if self.counters.contains_key(&a.0)
                || self.nodes.contains_key(&a.0)
                || self.macs.contains_key(&a.0)
                || self.plain.contains_key(&a.0)
            {
                problems.push(format!("queued victim {a} still resident"));
            }
        }
        // 3. Uncached counters verify against their parents.
        for kind in RegionKind::ALL {
            let layout = self.layout(kind);
            if layout.is_empty() {
                continue;
            }
            let geom = &layout.geometry;
            let store = self.mc.store();
            let parent_slot = |level: u8, index: u64| -> Option<Mac64> {
                let (pl, pi) = geom.parent(level, index);
                let slot = geom.child_slot(index);
                if pl == geom.root_level() {
                    return Some(self.root(kind).slot(slot));
                }
                let paddr = layout.bmt_node_addr(pl, pi)?;
                let buf = self
                    .nodes
                    .get(&paddr.0)
                    .copied()
                    .unwrap_or(NodeBuf(store.read(paddr)));
                Some(buf.slot(slot))
            };
            let osiris = matches!(self.counter_persistence, CounterPersistence::Osiris { .. });
            for leaf in 0..geom.leaves() {
                let addr = layout.counter_start + leaf;
                if self.counters.contains_key(&addr.0)
                    || self.evict_queue.iter().any(|e| e.addr() == addr)
                {
                    continue; // on-chip copies may legitimately run ahead
                }
                let bytes = store.read(addr);
                let h = bmt::leaf_hash(&self.mac_engine, kind, leaf, &bytes);
                match parent_slot(0, leaf) {
                    Some(slot) if slot == h => {}
                    Some(slot) if slot.is_zero() && kind == RegionKind::NonPersistent => {}
                    // Osiris: the slot may legitimately run ahead of a
                    // skipped counter persist; bounded and recoverable.
                    Some(_) if osiris && kind == RegionKind::Persistent => {}
                    Some(slot) => problems.push(format!(
                        "{kind} leaf {leaf}: NVM hash {h} != parent slot {slot}"
                    )),
                    None => problems.push(format!("{kind} leaf {leaf}: no parent slot")),
                }
            }
        }
        problems
    }

    /// Collects every component's counters and latency histograms into
    /// one hierarchical registry (`secure.*`, `l3.*`, `ctr_cache.*`,
    /// `mt_cache.*`, `mem.*`, `wear.*`).
    pub fn stat_registry(&self) -> StatRegistry {
        let mut reg = StatRegistry::new();
        self.stats.register(&mut reg.scope("secure"));
        self.hists.register(&mut reg.scope("secure"));
        self.prefetcher.stats().register(&mut reg.scope("prefetch"));
        self.l3.register(&mut reg.scope("l3"));
        self.ctr_cache.register(&mut reg.scope("ctr_cache"));
        self.mt_cache.register(&mut reg.scope("mt_cache"));
        self.mc.register(&mut reg.scope("mem"));
        let wear = self.mc.wear();
        let mut w = reg.scope("wear");
        w.set("max_writes", wear.max_writes());
        w.set("blocks_touched", wear.blocks_touched() as u64);
        w.set("imbalance_x1000", (wear.imbalance() * 1000.0) as u64);
        reg
    }

    /// Reports every cache's and the memory controller's statistics
    /// under standard prefixes (the flattened view of
    /// [`SecureMemory::stat_registry`]).
    pub fn report_stats(&self) -> StatSet {
        self.stat_registry().to_stat_set()
    }
}
