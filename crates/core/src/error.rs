//! Error types of the secure memory controller.

use std::error::Error;
use std::fmt;

use triad_sim::{BlockAddr, PhysAddr};

/// What kind of metadata failed integrity verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityKind {
    /// A counter block's hash did not match its BMT parent slot.
    Counter,
    /// An intermediate BMT node's hash did not match its parent slot.
    BmtNode,
    /// A recomputed tree root did not match the on-chip root register.
    Root,
}

impl fmt::Display for IntegrityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrityKind::Counter => write!(f, "counter block"),
            IntegrityKind::BmtNode => write!(f, "Merkle-tree node"),
            IntegrityKind::Root => write!(f, "Merkle-tree root"),
        }
    }
}

/// The crash hooks a [`crate::engine::SecureMemory`] can arm. Used by
/// the typed arming API (`SecureMemory::arm_crash`) and by
/// [`SecureMemoryError::CrashHookArmed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashHookKind {
    /// Crash instead of the n-th durability point
    /// (`inject_crash_after_persists`).
    PersistBoundary,
    /// Crash after n further WPQ copies inside atomic persists
    /// (`inject_crash_after_wpq_writes`).
    WpqWrite,
}

impl fmt::Display for CrashHookKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrashHookKind::PersistBoundary => write!(f, "persist-boundary crash hook"),
            CrashHookKind::WpqWrite => write!(f, "WPQ-write crash hook"),
        }
    }
}

/// Errors returned by [`crate::engine::SecureMemory`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SecureMemoryError {
    /// The address is outside the configured physical space, or not in
    /// any region's data area.
    OutOfRange {
        /// The offending address.
        addr: PhysAddr,
    },
    /// A Bonsai-Merkle-tree verification failed while fetching
    /// metadata: either real tampering or (for non-persistent data
    /// without Triad-NVM's session/lazy mechanisms) a stale-metadata
    /// artefact of the crash.
    IntegrityViolation {
        /// What failed to verify.
        kind: IntegrityKind,
        /// The metadata block involved.
        block: BlockAddr,
    },
    /// A data block's MAC did not match: the ciphertext (or its MAC, or
    /// its counter) was tampered with or rolled back.
    MacMismatch {
        /// The data block involved.
        block: BlockAddr,
    },
    /// The system crashed and [`crate::engine::SecureMemory::recover`]
    /// has not yet been run.
    NeedsRecovery,
    /// Recovery declared the persistent region unverifiable (e.g. the
    /// `WriteBack` scheme persists no metadata, or corruption could not
    /// be isolated).
    Unverifiable {
        /// Human-readable cause.
        reason: String,
    },
    /// A persist (`clwb + sfence`) was issued for an address outside
    /// the persistent region.
    NotPersistent {
        /// The offending address.
        addr: PhysAddr,
    },
    /// `arm_crash` was called while a crash hook was already armed.
    /// Hook precedence is whichever-fires-first-wins (the first hook
    /// to fire disarms every other armed hook), so arming a second
    /// hook is almost always a test bug; the typed API rejects it
    /// instead of silently stacking.
    CrashHookArmed {
        /// The hook that is already armed.
        existing: CrashHookKind,
        /// The hook the rejected call tried to arm.
        requested: CrashHookKind,
    },
    /// `begin_epoch` was called while an epoch was already open.
    /// Nested epochs have no defined ordering semantics, so reentrancy
    /// is rejected instead of silently merging the two epochs.
    EpochAlreadyOpen,
    /// `end_epoch` was called with no epoch open. Closing a
    /// never-opened epoch used to be a silent no-op, but that let
    /// periodic flush timers (which call `end_epoch` on a schedule)
    /// mask double-close bugs in the code they interleave with; the
    /// typed error makes the unbalanced close visible. Callers with a
    /// legitimately conditional epoch should guard on
    /// [`SecureMemory::epoch_open`].
    ///
    /// [`SecureMemory::epoch_open`]: crate::engine::SecureMemory::epoch_open
    EpochNotOpen,
    /// The configuration was rejected.
    Config(String),
    /// An internal engine invariant was violated — a bug in the model,
    /// not in the caller's use of it. Surfaced as an error rather than
    /// a panic so a broken invariant cannot abort a simulation
    /// mid-operation (the panic-policy lint enforces this).
    Internal {
        /// Which invariant broke.
        what: String,
    },
}

impl SecureMemoryError {
    /// Builds an [`SecureMemoryError::Internal`] from any displayable
    /// description.
    pub fn internal(what: impl Into<String>) -> Self {
        SecureMemoryError::Internal { what: what.into() }
    }
}

impl fmt::Display for SecureMemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecureMemoryError::OutOfRange { addr } => {
                write!(f, "address {addr} is outside every data region")
            }
            SecureMemoryError::IntegrityViolation { kind, block } => {
                write!(f, "integrity verification failed for {kind} at {block}")
            }
            SecureMemoryError::MacMismatch { block } => {
                write!(f, "data MAC mismatch at {block}")
            }
            SecureMemoryError::NeedsRecovery => {
                write!(f, "system crashed; recovery has not been run")
            }
            SecureMemoryError::Unverifiable { reason } => {
                write!(f, "memory state unverifiable: {reason}")
            }
            SecureMemoryError::NotPersistent { addr } => {
                write!(f, "persist issued for non-persistent address {addr}")
            }
            SecureMemoryError::CrashHookArmed {
                existing,
                requested,
            } => {
                write!(
                    f,
                    "cannot arm the {requested}: the {existing} is already armed \
                     (first fire wins; disarm it first)"
                )
            }
            SecureMemoryError::EpochAlreadyOpen => {
                write!(f, "an epoch is already open; nested epochs are rejected")
            }
            SecureMemoryError::EpochNotOpen => {
                write!(
                    f,
                    "no epoch is open; guard conditional closes with epoch_open()"
                )
            }
            SecureMemoryError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SecureMemoryError::Internal { what } => {
                write!(f, "internal engine invariant violated: {what}")
            }
        }
    }
}

impl Error for SecureMemoryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SecureMemoryError::MacMismatch {
            block: BlockAddr(5),
        };
        let msg = e.to_string();
        assert!(msg.contains("blk:0x5"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SecureMemoryError>();
    }

    #[test]
    fn integrity_kind_display() {
        assert_eq!(IntegrityKind::Counter.to_string(), "counter block");
        assert_eq!(IntegrityKind::Root.to_string(), "Merkle-tree root");
    }
}
