//! The multi-core trace-driven driver (the gem5 substitute).
//!
//! Each core replays a [`TraceSource`] through private L1/L2 caches
//! into the shared [`SecureMemory`] (L3 + security engine + NVM).
//! Cores advance in simulated-time order, so contention on the shared
//! L3, metadata caches, banks and WPQ emerges naturally. The core
//! model is in-order with a store buffer: loads block until data
//! returns, plain stores retire at L1 latency, persistent stores block
//! until the whole update set is durable — the paper's effects all
//! live below the caches, so this simple model preserves them.

use triad_cache::{Cache, Replacement};
use triad_sim::config::SystemConfig;
use triad_sim::stats::{Histogram, StatRegistry, StatSet};
use triad_sim::time::Time;
use triad_sim::trace::{MemOp, OpKind, TraceSource};
use triad_sim::{BlockAddr, BLOCK_BYTES};

use crate::batch::WriteBatch;
use crate::engine::{Result, SecureMemory};

/// Per-core execution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreStats {
    /// Workload name.
    pub name: String,
    /// Instructions retired (memory ops + gaps).
    pub instructions: u64,
    /// Memory operations replayed.
    pub ops: u64,
    /// The core's local time when it finished.
    pub finish_time: Time,
    /// Per-operation latency distribution, in nanoseconds (gap time
    /// excluded: the memory-system component only).
    pub latency_ns: Histogram,
}

impl CoreStats {
    /// Instructions per second of simulated time.
    pub fn ips(&self) -> f64 {
        let secs = self.finish_time.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.instructions as f64 / secs
        }
    }
}

/// Result of a [`System::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct SystemResult {
    /// Per-core outcomes.
    pub cores: Vec<CoreStats>,
    /// Collected statistics of the shared uncore (the flattened view
    /// of [`SystemResult::registry`]).
    pub stats: StatSet,
    /// The hierarchical registry: every component's counters and
    /// latency histograms, plus the merged per-core `core.latency_ns`.
    pub registry: StatRegistry,
    /// Total NVM writes performed (the Figure 9 metric).
    pub nvm_writes: u64,
}

impl SystemResult {
    /// System throughput: total instructions over the longest core's
    /// time (the Figure 4/8 metric, compared across schemes).
    pub fn throughput(&self) -> f64 {
        let wall = self
            .cores
            .iter()
            .map(|c| c.finish_time)
            .max()
            .unwrap_or(Time::ZERO)
            .as_secs_f64();
        if wall == 0.0 {
            0.0
        } else {
            self.cores.iter().map(|c| c.instructions).sum::<u64>() as f64 / wall
        }
    }
}

struct CoreState {
    l1: Cache,
    l2: Cache,
    trace: Box<dyn TraceSource>,
    time: Time,
    instructions: u64,
    ops: u64,
    done: bool,
    latency_ns: Histogram,
    /// Write-combining buffer for consecutive persistent stores (only
    /// used when [`System::set_persist_batch`] enabled a window).
    wc_buffer: Vec<(BlockAddr, [u8; BLOCK_BYTES])>,
}

/// A complete simulated machine: N cores over one [`SecureMemory`].
pub struct System {
    config: SystemConfig,
    secure: SecureMemory,
    cores: Vec<CoreState>,
    /// Persist write-combining window (0 = scalar persists, the
    /// default); see [`System::set_persist_batch`].
    persist_batch_window: usize,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("cores", &self.cores.len())
            .field("scheme", &self.secure.scheme())
            .finish_non_exhaustive()
    }
}

/// Deterministic filler for store values (workload traces carry no
/// payloads; the pattern still exercises the full crypto path).
fn synth_data(block: BlockAddr, seq: u64) -> [u8; BLOCK_BYTES] {
    let mut out = [0u8; BLOCK_BYTES];
    let mut x = block.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seq;
    for chunk in out.chunks_mut(8) {
        x = x.rotate_left(13).wrapping_mul(0xA24B_AED4_963E_E407);
        chunk.copy_from_slice(&x.to_le_bytes());
    }
    out
}

impl System {
    /// Builds a system running one trace per core over `secure`.
    ///
    /// # Panics
    ///
    /// Panics if more traces than configured cores are supplied.
    pub fn new(secure: SecureMemory, traces: Vec<Box<dyn TraceSource>>) -> Self {
        let config = *secure.config();
        assert!(
            traces.len() <= config.cores,
            "{} traces for {} cores",
            traces.len(),
            config.cores
        );
        let cores = traces
            .into_iter()
            .enumerate()
            .map(|(i, trace)| CoreState {
                l1: Cache::new(format!("l1.{i}"), config.l1, Replacement::Lru),
                l2: Cache::new(format!("l2.{i}"), config.l2, Replacement::Lru),
                trace,
                time: Time::ZERO,
                instructions: 0,
                ops: 0,
                done: false,
                latency_ns: Histogram::new(),
                wc_buffer: Vec::new(),
            })
            .collect();
        System {
            config,
            secure,
            cores,
            persist_batch_window: 0,
        }
    }

    /// Enables write-combining of persistent stores: up to `window`
    /// *consecutive* `PersistentStore` ops per core buffer on chip and
    /// drain through one engine [`WriteBatch`] (shared pad pass,
    /// prefetch plan and coalesced metadata commit). Any other memory
    /// operation acts as a barrier and drains the buffer first, as
    /// does the end of the core's trace.
    ///
    /// This trades the *relaxed-persistency* window for throughput:
    /// buffered stores retire at L1 latency and only become durable at
    /// the next drain — the epoch-style contract of a write-combining
    /// buffer below the sfence, not the per-op durability of the
    /// scalar path. Core time still advances by the full drain cost
    /// (the win is coalescing, not free persists); drain time is
    /// charged between ops, so per-op latency histograms report the
    /// op itself. `window = 0` restores scalar per-op persists (the
    /// default).
    pub fn set_persist_batch(&mut self, window: usize) {
        self.persist_batch_window = window;
    }

    /// Drains core `idx`'s persist write-combining buffer as one
    /// batch, advancing the core's clock to the drain's completion.
    fn flush_persist_buffer(&mut self, idx: usize) -> Result<()> {
        if self.cores[idx].wc_buffer.is_empty() {
            return Ok(());
        }
        let mut batch = WriteBatch::new();
        for (block, data) in self.cores[idx].wc_buffer.drain(..) {
            batch.push(block, data);
        }
        let done = self.secure.persist_batch(&batch, self.cores[idx].time)?;
        // The burst just queued a batch worth of NVM writes; hold the
        // core until the WPQ is back under its high-water mark so the
        // next unrelated write-back doesn't absorb the stall.
        let headroom = self.secure.config.mem.wpq_entries / 2;
        let settled = done.max(self.secure.mc.wpq_settle_time(headroom));
        self.cores[idx].time = settled;
        Ok(())
    }

    /// The shared secure memory (inspection between runs).
    pub fn secure(&self) -> &SecureMemory {
        &self.secure
    }

    /// Consumes the system, returning the secure memory (e.g. to crash
    /// and recover it after a run).
    pub fn into_secure(self) -> SecureMemory {
        self.secure
    }

    fn step_core(&mut self, idx: usize, op: MemOp) -> Result<()> {
        // A full window drains before accepting another member, and any
        // non-persist op is a barrier (its ordering must not overtake
        // buffered durability). Draining here, before the op's issue
        // time is computed, keeps the drain out of the op's latency.
        let window = self.persist_batch_window;
        if window > 0 {
            let buffered = self.cores[idx].wc_buffer.len();
            if buffered > 0 && (op.kind != OpKind::PersistentStore || buffered >= window) {
                self.flush_persist_buffer(idx)?;
            }
        }
        let base_cpi = self.config.core.base_cpi_ps;
        let core = &mut self.cores[idx];
        let block = op.addr.block();
        let mut t = core.time + triad_sim::time::Duration::from_ps(op.gap as u64 * base_cpi);
        let issue = t;
        core.instructions += op.instruction_count();
        core.ops += 1;

        // Private-cache victims that need to travel downstream.
        let mut l2_fills: Vec<(BlockAddr, bool)> = Vec::new();
        let mut secure_stores: Vec<BlockAddr> = Vec::new();

        match op.kind {
            OpKind::Load | OpKind::Store => {
                let write = op.kind == OpKind::Store;
                let l1_out = core.l1.access(block, write);
                if let Some(v) = l1_out.victim {
                    l2_fills.push((v.addr, v.dirty));
                }
                if l1_out.hit {
                    t += core.l1.latency();
                } else {
                    let l2_out = core.l2.access(block, false);
                    if let Some(v) = l2_out.victim {
                        if v.dirty {
                            secure_stores.push(v.addr);
                        }
                    }
                    if l2_out.hit {
                        t += core.l1.latency() + core.l2.latency();
                    } else {
                        // Shared L3 + security engine.
                        let seq = core.ops;
                        let (_, done) = self.secure.load_block(block, t)?;
                        t = done;
                        if write {
                            // Write-allocate: the line is now dirty in
                            // L1; the value reaches the engine when the
                            // dirty line drains.
                            let _ = seq;
                        }
                    }
                }
                if write {
                    // Redundant for the hit path, but keeps the L1
                    // line dirty after a miss fill as well.
                    core.l1.access(block, true);
                }
            }
            OpKind::PersistentStore => {
                // store; clwb; sfence — blocks until durable (or, with
                // a persist-batch window, until buffered: durability
                // then arrives at the next drain).
                core.l1.access(block, true);
                core.l1.flush(block);
                core.l2.flush(block);
                let data = synth_data(block, core.ops);
                if window > 0 {
                    core.wc_buffer.push((block, data));
                    t += core.l1.latency();
                } else {
                    let done = self.secure.persist_block(block, data, t)?;
                    t = done;
                }
            }
            OpKind::Flush => {
                let dirty_l1 = core.l1.flush(block);
                let dirty_l2 = core.l2.flush(block);
                if dirty_l1 || dirty_l2 {
                    let data = synth_data(block, core.ops);
                    self.secure.store_block(block, data, t)?;
                }
                let done = self.secure.flush_block(block, t)?;
                t = done;
            }
        }

        // Drain private-cache victims downstream (off the critical
        // path: they consume bandwidth but don't stall the core).
        for (addr, dirty) in l2_fills {
            let out = core.l2.access(addr, dirty);
            if let Some(v) = out.victim {
                if v.dirty {
                    secure_stores.push(v.addr);
                }
            }
        }
        let seq = core.ops;
        core.latency_ns.record(t.since(issue).as_ns());
        core.time = t;
        for addr in secure_stores {
            let data = synth_data(addr, seq);
            self.secure.store_block(addr, data, t)?;
        }
        Ok(())
    }

    /// Runs every core for up to `ops_per_core` memory operations (or
    /// until its trace ends), interleaved in time order. Returns the
    /// aggregate result.
    ///
    /// # Errors
    ///
    /// Propagates any [`crate::SecureMemoryError`] raised by the
    /// engine (integrity violations, out-of-range traces, …).
    pub fn run(&mut self, ops_per_core: u64) -> Result<SystemResult> {
        // Advance the earliest non-finished core until all are done.
        while let Some(idx) = self
            .cores
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.done)
            .min_by_key(|(_, c)| c.time)
            .map(|(i, _)| i)
        {
            if self.cores[idx].ops >= ops_per_core {
                self.cores[idx].done = true;
                self.flush_persist_buffer(idx)?;
                continue;
            }
            match self.cores[idx].trace.next_op() {
                None => {
                    self.cores[idx].done = true;
                    self.flush_persist_buffer(idx)?;
                }
                Some(op) => {
                    self.step_core(idx, op)?;
                }
            }
        }
        let cores = self
            .cores
            .iter()
            .map(|c| CoreStats {
                name: c.trace.name().to_string(),
                instructions: c.instructions,
                ops: c.ops,
                finish_time: c.time,
                latency_ns: c.latency_ns.clone(),
            })
            .collect();
        let mut registry = self.secure.stat_registry();
        {
            let mut core_scope = registry.scope("core");
            for c in &self.cores {
                core_scope.histogram("latency_ns", &c.latency_ns);
            }
        }
        let stats = registry.to_stat_set();
        Ok(SystemResult {
            cores,
            nvm_writes: self.secure.mem_stats().writes,
            stats,
            registry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SecureMemoryBuilder;
    use crate::scheme::PersistScheme;
    use triad_sim::trace::VecTrace;
    use triad_sim::PhysAddr;

    fn mem(scheme: PersistScheme) -> SecureMemory {
        SecureMemoryBuilder::new().scheme(scheme).build().unwrap()
    }

    fn simple_trace(name: &str, base: PhysAddr, n: u64, persist: bool) -> Box<dyn TraceSource> {
        let ops = (0..n)
            .map(|i| {
                let addr = PhysAddr(base.0 + (i % 64) * 64);
                if persist {
                    MemOp::persist(addr, 10)
                } else if i % 2 == 0 {
                    MemOp::store(addr, 10)
                } else {
                    MemOp::load(addr, 10)
                }
            })
            .collect();
        Box::new(VecTrace::new(name, ops))
    }

    #[test]
    fn runs_a_simple_workload() {
        let m = mem(PersistScheme::triad_nvm(1));
        let np = m.non_persistent_region().start();
        let mut sys = System::new(m, vec![simple_trace("t", np, 100, false)]);
        let r = sys.run(100).unwrap();
        assert_eq!(r.cores[0].ops, 100);
        assert!(r.cores[0].instructions >= 100);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn persists_slow_execution_down() {
        let run = |scheme| {
            let m = mem(scheme);
            let p = m.persistent_region().start();
            let mut sys = System::new(m, vec![simple_trace("p", p, 200, true)]);
            sys.run(200).unwrap().cores[0].finish_time
        };
        let strict = run(PersistScheme::Strict);
        let t1 = run(PersistScheme::triad_nvm(1));
        assert!(
            strict > t1,
            "strict ({strict}) must be slower than TriadNVM-1 ({t1})"
        );
    }

    #[test]
    fn scheme_changes_metadata_write_counts() {
        // Physical NVM writes can coalesce in the WPQ, so compare the
        // logical metadata writes each scheme issues.
        let writes = |scheme| {
            let m = mem(scheme);
            let p = m.persistent_region().start();
            let mut sys = System::new(m, vec![simple_trace("p", p, 200, true)]);
            sys.run(200)
                .unwrap()
                .stats
                .get("secure.persist_metadata_writes")
        };
        let strict = writes(PersistScheme::Strict);
        let t1 = writes(PersistScheme::triad_nvm(1));
        let t2 = writes(PersistScheme::triad_nvm(2));
        assert!(strict > t2, "strict {strict} > t2 {t2}");
        assert!(t2 > t1, "t2 {t2} > t1 {t1}");
    }

    #[test]
    fn multiple_cores_interleave() {
        let m = mem(PersistScheme::triad_nvm(1));
        let np = m.non_persistent_region().start();
        let p = m.persistent_region().start();
        let mut sys = System::new(
            m,
            vec![
                simple_trace("a", np, 50, false),
                simple_trace("b", p, 50, true),
            ],
        );
        let r = sys.run(50).unwrap();
        assert_eq!(r.cores.len(), 2);
        assert!(r.cores.iter().all(|c| c.ops == 50));
        assert!(r.stats.get("secure.persists") >= 50);
    }

    #[test]
    fn persist_batching_coalesces_metadata_writes() {
        let run = |window: usize| {
            let m = mem(PersistScheme::triad_nvm(2));
            let p = m.persistent_region().start();
            let mut sys = System::new(m, vec![simple_trace("p", p, 200, true)]);
            sys.set_persist_batch(window);
            let r = sys.run(200).unwrap();
            assert_eq!(r.cores[0].ops, 200);
            (
                r.stats.get("secure.persist_metadata_writes"),
                r.stats.get("secure.persists"),
                r.stats.get("secure.batches"),
            )
        };
        let (scalar_meta, scalar_persists, scalar_batches) = run(0);
        let (batched_meta, batched_persists, batched_batches) = run(8);
        assert_eq!(scalar_batches, 0);
        assert!(batched_batches >= 200 / 8, "batches: {batched_batches}");
        // Every store is still a durability point...
        assert_eq!(batched_persists, scalar_persists);
        // ...but shared counter/MAC/BMT blocks commit once per drain.
        assert!(
            batched_meta < scalar_meta,
            "batched {batched_meta} must coalesce below scalar {scalar_meta}"
        );
    }

    #[test]
    fn persist_batching_survives_crash_recovery() {
        let m = mem(PersistScheme::triad_nvm(3));
        let p = m.persistent_region().start();
        let mut sys = System::new(m, vec![simple_trace("p", p, 96, true)]);
        sys.set_persist_batch(8);
        sys.run(96).unwrap();
        let mut m = sys.into_secure();
        m.crash();
        assert!(m.recover().unwrap().persistent_recovered);
    }

    #[test]
    fn trace_exhaustion_stops_early() {
        let m = mem(PersistScheme::triad_nvm(1));
        let np = m.non_persistent_region().start();
        let mut sys = System::new(m, vec![simple_trace("t", np, 10, false)]);
        let r = sys.run(1000).unwrap();
        assert_eq!(r.cores[0].ops, 10);
    }

    #[test]
    #[should_panic(expected = "traces for")]
    fn too_many_traces_panics() {
        let m = mem(PersistScheme::triad_nvm(1));
        let np = m.non_persistent_region().start();
        let traces: Vec<Box<dyn TraceSource>> = (0..9)
            .map(|i| simple_trace(&format!("t{i}"), np, 1, false))
            .collect();
        System::new(m, traces);
    }
}
