//! # triad-core
//!
//! The Triad-NVM secure memory controller (Awad et al., ISCA 2019):
//! counter-mode encryption with split counters, per-block MACs, two
//! per-region Bonsai Merkle Trees, configurable metadata-persistence
//! schemes, crash injection, and recovery — including the lazy
//! non-persistent-region recovery and corruption pinpointing.
//!
//! Most users start from [`SecureMemoryBuilder`]:
//!
//! ```rust
//! use triad_core::{PersistScheme, SecureMemoryBuilder};
//!
//! # fn main() -> Result<(), triad_core::SecureMemoryError> {
//! let mut mem = SecureMemoryBuilder::new()
//!     .capacity_bytes(4 << 20)
//!     .persistent_fraction_eighths(2)
//!     .scheme(PersistScheme::triad_nvm(2))
//!     .build()?;
//! let addr = mem.persistent_region().start();
//! mem.write(addr, b"hello")?;
//! mem.persist(addr)?;
//! mem.crash();
//! let report = mem.recover()?;
//! assert!(report.persistent_recovered);
//! assert_eq!(&mem.read(addr)?[..5], b"hello");
//! # Ok(())
//! # }
//! ```
//!
//! The multi-core timing driver lives in [`system`]; the analytic
//! recovery-time model of Figure 10 in [`recovery`].

#![warn(missing_docs)]

pub mod batch;
pub mod engine;
pub mod error;
pub mod recovery;
pub mod registers;
pub mod scheme;
pub mod system;

pub use batch::WriteBatch;
pub use engine::{
    RegionHandle, Result, SecureHists, SecureMemory, SecureMemoryBuilder, SecureStats,
};
pub use error::{CrashHookKind, IntegrityKind, SecureMemoryError};
pub use recovery::{
    CorruptRange, DurabilityRecovery, LogReplayStats, PinpointReport, RecoveryModel, RecoveryReport,
};
pub use registers::{PersistentRegisters, StagedUpdate, StagedWrite};
pub use scheme::{CounterPersistence, KeyPolicy, PersistScheme};
pub use system::{CoreStats, System, SystemResult};
