//! On-chip persistent registers (§3.3.5).
//!
//! Modern persistence-domain hardware (ADR) lets a handful of on-chip
//! registers survive power loss — either true NVM registers or volatile
//! registers flushed on the power-fail interrupt. Triad-NVM keeps here:
//!
//! * the two BMT **root nodes** (persistent / non-persistent region),
//! * the **session counter** (§3.3.2),
//! * a **staging log + READY_BIT**: before a write's updates are copied
//!   into the WPQ they are logged here, so a crash mid-copy can be
//!   replayed at recovery instead of leaving data and metadata torn.

use triad_mem::store::Block;
use triad_meta::bmt::NodeBuf;
use triad_sim::BlockAddr;

/// One staged NVM write (part of an atomic update set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagedWrite {
    /// Destination block.
    pub addr: BlockAddr,
    /// Bytes to write.
    pub data: Block,
}

/// The atomic update set for one persisted data write: data block,
/// counter block, MAC block and the strictly persisted BMT nodes, plus
/// the new root-register values.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StagedUpdate {
    /// All NVM writes this update must perform.
    pub writes: Vec<StagedWrite>,
    /// New persistent-region root node (if the update changes it).
    pub new_persistent_root: Option<NodeBuf>,
}

/// The persistent register file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistentRegisters {
    /// Root node of the persistent region's BMT.
    pub persistent_root: NodeBuf,
    /// Root node of the non-persistent region's BMT.
    pub non_persistent_root: NodeBuf,
    /// Session counter: 0 is reserved for persistent data; the current
    /// boot session (≥ 1) is used for non-persistent data IVs.
    pub session: u32,
    /// Staged update awaiting its WPQ copy. `Some` ⇔ READY_BIT set.
    staged: Option<StagedUpdate>,
}

impl Default for PersistentRegisters {
    fn default() -> Self {
        PersistentRegisters {
            persistent_root: NodeBuf::zeroed(),
            non_persistent_root: NodeBuf::zeroed(),
            session: 1,
            staged: None,
        }
    }
}

impl PersistentRegisters {
    /// Fresh register file (first boot, session 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether READY_BIT is set (a staged update has not finished its
    /// WPQ copy).
    pub fn ready_bit(&self) -> bool {
        self.staged.is_some()
    }

    /// Logs an update set and sets READY_BIT.
    pub fn stage(&mut self, update: StagedUpdate) {
        self.staged = Some(update);
    }

    /// Clears READY_BIT after a completed WPQ copy.
    pub fn commit(&mut self) {
        self.staged = None;
    }

    /// Takes the staged update for replay at recovery (clears
    /// READY_BIT).
    pub fn take_staged(&mut self) -> Option<StagedUpdate> {
        self.staged.take()
    }

    /// Number of register slots a staged update of `writes` NVM writes
    /// occupies (for the paper's "TriadNVM-2 needs 5 registers"
    /// accounting: one per staged write plus one for the root).
    pub fn slots_for(writes: usize) -> usize {
        writes + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_registers() {
        let r = PersistentRegisters::new();
        assert_eq!(r.session, 1);
        assert!(!r.ready_bit());
        assert!(r.persistent_root.is_zeroed());
    }

    #[test]
    fn stage_commit_cycle() {
        let mut r = PersistentRegisters::new();
        r.stage(StagedUpdate {
            writes: vec![StagedWrite {
                addr: BlockAddr(1),
                data: [1; 64],
            }],
            new_persistent_root: None,
        });
        assert!(r.ready_bit());
        r.commit();
        assert!(!r.ready_bit());
        assert!(r.take_staged().is_none());
    }

    #[test]
    fn take_staged_returns_update_once() {
        let mut r = PersistentRegisters::new();
        let u = StagedUpdate {
            writes: vec![],
            new_persistent_root: Some(NodeBuf::zeroed()),
        };
        r.stage(u.clone());
        assert_eq!(r.take_staged(), Some(u));
        assert_eq!(r.take_staged(), None);
        assert!(!r.ready_bit());
    }

    #[test]
    fn slot_accounting_matches_paper_example() {
        // TriadNVM-2 persists data + counter + MAC + 1 node = 4 writes
        // → 5 registers, the figure quoted in §3.3.5.
        assert_eq!(PersistentRegisters::slots_for(4), 5);
    }
}
