//! Recovery: the analytic recovery-time model of Figure 10, corruption
//! pinpointing (§5.2), and the report type returned by
//! [`crate::engine::SecureMemory::recover`].

use triad_crypto::mac::MacEngine;
use triad_mem::store::SparseStore;
use triad_meta::bmt::{self, NodeBuf, NodeId};
use triad_meta::layout::RegionLayout;
use triad_sim::time::Duration;
use triad_sim::PhysAddr;

use crate::scheme::PersistScheme;

/// A data range recovery could not verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptRange {
    /// First byte of the unverifiable data.
    pub start: PhysAddr,
    /// Length in bytes.
    pub bytes: u64,
}

/// Work performed replaying an application-level redo log (the
/// `triad-kv` write-ahead log) after the engine's own BMT/counter
/// recovery. The engine never fills this in itself — log replay is an
/// application-layer protocol — but it belongs on the report so one
/// artifact describes the full cost of coming back from a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogReplayStats {
    /// Log records scanned (write records and commit markers).
    pub records_scanned: u64,
    /// Committed transactions whose effects were (re)applied.
    pub txns_applied: u64,
    /// Individual block writes applied while replaying those
    /// transactions.
    pub writes_applied: u64,
    /// Records discarded as uncommitted, stale, or torn.
    pub records_discarded: u64,
    /// Whether the scan ended on a torn record (a crash mid-append)
    /// rather than on a clean log end.
    pub torn_tail: bool,
}

impl LogReplayStats {
    /// Accumulates another shard's replay stats into this one.
    pub fn merge(&mut self, other: &LogReplayStats) {
        self.records_scanned += other.records_scanned;
        self.txns_applied += other.txns_applied;
        self.writes_applied += other.writes_applied;
        self.records_discarded += other.records_discarded;
        self.torn_tail |= other.torn_tail;
    }
}

/// What a durability-tiered application layer measured about its own
/// state after recovery. Like [`LogReplayStats`], the engine never
/// fills this in — the loss accounting belongs to whichever layer
/// admitted the mutations (the `triad_workloads` serving front-end) —
/// but it lives on the report so the one artifact a crash produces
/// states the mode that governed the lost window and the measured loss
/// against its contractual bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityRecovery {
    /// The weakest durability tier that admitted mutations since the
    /// last recovery (or barrier), e.g. `"strict"`, `"buffered"`,
    /// `"in-memory"`. A string rather than the application's enum so
    /// the engine crate does not depend upward.
    pub mode: &'static str,
    /// Admitted mutations the recovered state does not reflect
    /// (rolled back by the crash).
    pub mutations_lost: u64,
    /// The contractual ceiling on `mutations_lost`: `Some(0)` for
    /// strict, `Some(max_loss)` for buffered, `None` (unbounded until
    /// the next barrier) for in-memory.
    pub loss_bound: Option<u64>,
}

impl DurabilityRecovery {
    /// Whether the measured loss respects the contractual bound.
    pub fn within_bound(&self) -> bool {
        match self.loss_bound {
            Some(bound) => self.mutations_lost <= bound,
            None => true,
        }
    }
}

/// Outcome of [`SecureMemory::recover`](crate::engine::SecureMemory::recover).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Whether the persistent region verified against its on-chip root.
    pub persistent_recovered: bool,
    /// Metadata blocks read while rebuilding the persistent tree.
    pub persistent_blocks_read: u64,
    /// Level-1 nodes zeroed for the non-persistent region (§3.3.4).
    pub non_persistent_blocks_written: u64,
    /// Blocks read while rebuilding the non-persistent tree above L1.
    pub non_persistent_blocks_read: u64,
    /// Staged writes replayed from the persistent registers
    /// (READY_BIT was set: the crash hit mid-copy, §3.3.5).
    pub replayed_staged_writes: usize,
    /// Estimated wall-clock recovery time at the paper's 100 ns per
    /// block touched.
    pub estimated_duration: Duration,
    /// Data ranges that could not be verified (empty on clean recovery).
    pub unverifiable: Vec<CorruptRange>,
    /// Metadata nodes found corrupt, as `(level, index)` pairs
    /// (recovery may still succeed by rebuilding them from below).
    pub corrupt_metadata: Vec<(u8, u64)>,
    /// The new session counter.
    pub session: u32,
    /// Application-level redo-log replay performed on top of this
    /// recovery (`None` when no log replay ran; filled in by e.g.
    /// `triad_kv`'s store-open path).
    pub log_replay: Option<LogReplayStats>,
    /// Durability-tier accounting for the recovered state (`None` when
    /// no tiered layer was driving the engine; filled in by
    /// `triad_workloads`' serving front-end).
    pub durability: Option<DurabilityRecovery>,
}

/// The paper's recovery-time accounting: 100 ns to read one tree block
/// and compute its MAC (§5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryModel {
    /// Cost per block read + MAC computation.
    pub per_block: Duration,
    /// BMT arity.
    pub arity: u64,
}

impl Default for RecoveryModel {
    fn default() -> Self {
        RecoveryModel::isca19()
    }
}

impl RecoveryModel {
    /// The paper's parameters: 100 ns per block, 8-ary tree.
    pub fn isca19() -> Self {
        RecoveryModel {
            per_block: Duration::from_ns(100),
            arity: 8,
        }
    }

    /// Node counts per level for a memory of `capacity_bytes`
    /// (index 0 = counter blocks), down to a single root.
    pub fn level_counts(&self, capacity_bytes: u64) -> Vec<u64> {
        let data_blocks = capacity_bytes / 64;
        let mut level = data_blocks.div_ceil(64);
        let mut counts = vec![level];
        while level > 1 {
            level = level.div_ceil(self.arity);
            counts.push(level);
        }
        counts
    }

    /// Blocks that must be touched to recover with `scheme`:
    ///
    /// * `WriteBack` ("no-persist"): every data block is re-read to
    ///   recompute MACs, plus every counter block and tree node.
    /// * `TriadNvm(N)`: every block of level `N-1` is read and every
    ///   node above it recomputed.
    /// * `Strict`: nothing.
    pub fn blocks_touched(&self, capacity_bytes: u64, scheme: PersistScheme) -> u64 {
        let levels = self.level_counts(capacity_bytes);
        match scheme {
            PersistScheme::Strict => 0,
            PersistScheme::WriteBack => capacity_bytes / 64 + levels.iter().sum::<u64>(),
            PersistScheme::TriadNvm { n } => {
                let start = (n - 1) as usize;
                if start >= levels.len() {
                    return 0;
                }
                levels[start..].iter().sum()
            }
        }
    }

    /// Estimated recovery time for `capacity_bytes` under `scheme`
    /// (the quantity plotted in Figure 10).
    pub fn recovery_time(&self, capacity_bytes: u64, scheme: PersistScheme) -> Duration {
        self.per_block
            .saturating_mul(self.blocks_touched(capacity_bytes, scheme))
    }
}

/// Result of corruption pinpointing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PinpointReport {
    /// Whether the region's contents (data + counters) still verify —
    /// corruption, if any, was confined to rebuildable metadata.
    pub recoverable: bool,
    /// Corrupt stored metadata nodes as `(level, index)`.
    pub corrupt_nodes: Vec<(u8, u64)>,
    /// Unverifiable data ranges (non-empty only when unrecoverable).
    pub unverifiable: Vec<CorruptRange>,
}

fn range_of_leaves(layout: &RegionLayout, first_leaf: u64, leaves: u64) -> CorruptRange {
    let first_data = layout.data_start + first_leaf * 64;
    let span = (leaves * 64).min(layout.data_blocks.saturating_sub(first_leaf * 64));
    CorruptRange {
        start: first_data.base(),
        bytes: span * 64,
    }
}

/// Computes the hashes of all nodes at `level` from the stored image.
fn stored_level_hashes(
    store: &SparseStore,
    layout: &RegionLayout,
    engine: &MacEngine,
    level: u8,
) -> Vec<triad_crypto::Mac64> {
    let geom = &layout.geometry;
    (0..geom.nodes_at_level(level))
        .map(|i| {
            if level == 0 {
                bmt::leaf_hash(
                    engine,
                    layout.kind,
                    i,
                    &store.read(layout.counter_start + i),
                )
            } else {
                // Every level below the root has stored addresses by
                // construction; a miss is a geometry bug, not data
                // corruption, so it hashes as all-zero (never matches).
                let Some(addr) = layout.bmt_node_addr(level, i) else {
                    debug_assert!(false, "level {level} node {i} has no stored address");
                    return triad_crypto::Mac64::ZERO;
                };
                bmt::node_hash(
                    engine,
                    NodeId {
                        region: layout.kind,
                        level,
                        index: i,
                    },
                    &store.read(addr),
                )
            }
        })
        .collect()
}

/// §5.2 resilience procedure: given that a rebuild from `persist_level`
/// failed to reproduce `expected_root`, descend level by level to find
/// the lowest stored level that *does* reproduce the root; the corrupt
/// nodes above it are identified by comparing stored vs recomputed
/// contents. If even the counter blocks cannot reproduce the root,
/// the mismatching root slots (or L1 slots, when `persist_level ≥ 1`)
/// bound the unverifiable data ranges.
pub fn pinpoint(
    store: &SparseStore,
    layout: &RegionLayout,
    engine: &MacEngine,
    persist_level: u8,
    expected_root: &NodeBuf,
) -> PinpointReport {
    let geom = &layout.geometry;
    let root_level = geom.root_level();
    // Find the lowest stored level that reproduces the expected root.
    for k in (0..=persist_level.min(root_level - 1)).rev() {
        let mut scratch = store.clone();
        let out = bmt::rebuild_from_level(&mut scratch, layout, engine, k);
        if out.root == *expected_root {
            // Levels above k were corrupt in storage. Identify which
            // nodes at level k+1 disagree with their children.
            let child_hashes = stored_level_hashes(store, layout, engine, k);
            let mut corrupt = Vec::new();
            if (k + 1) < root_level {
                let stored = stored_level_hashes(store, layout, engine, k + 1);
                // Recompute level k+1 node *contents* from children.
                let parents = geom.nodes_at_level(k + 1);
                let mut recomputed = vec![NodeBuf::zeroed(); parents as usize];
                for (i, h) in child_hashes.iter().enumerate() {
                    let (_, pi) = geom.parent(k, i as u64);
                    recomputed[pi as usize].set_slot(geom.child_slot(i as u64), *h);
                }
                for (i, buf) in recomputed.iter().enumerate() {
                    let h = bmt::node_hash(
                        engine,
                        NodeId {
                            region: layout.kind,
                            level: k + 1,
                            index: i as u64,
                        },
                        &buf.0,
                    );
                    if h != stored[i] {
                        corrupt.push((k + 1, i as u64));
                    }
                }
            }
            return PinpointReport {
                recoverable: true,
                corrupt_nodes: corrupt,
                unverifiable: Vec::new(),
            };
        }
    }
    // Even level 0 does not reproduce the root: counters (or data under
    // them) are corrupt. Use the lowest trusted stored level to narrow
    // the damage: stored L1 when it was strictly persisted, otherwise
    // the root node's slots.
    let leaf_hashes = stored_level_hashes(store, layout, engine, 0);
    let mut unverifiable = Vec::new();
    let mut corrupt_nodes = Vec::new();
    if persist_level >= 1 && root_level > 1 {
        // Compare each leaf hash against the strictly persisted L1 slot.
        for (i, h) in leaf_hashes.iter().enumerate() {
            // `root_level > 1` guarantees L1 is stored; treat a missing
            // address as disagreement rather than aborting pinpointing.
            let Some(addr) = layout.bmt_node_addr(1, i as u64 / geom.arity()) else {
                debug_assert!(false, "L1 node for leaf {i} has no stored address");
                corrupt_nodes.push((0, i as u64));
                unverifiable.push(range_of_leaves(layout, i as u64, 1));
                continue;
            };
            let parent = NodeBuf(store.read(addr));
            if parent.slot(geom.child_slot(i as u64)) != *h {
                corrupt_nodes.push((0, i as u64));
                unverifiable.push(range_of_leaves(layout, i as u64, 1));
            }
        }
    } else {
        // Only the root's slots are trustworthy: each slot covers the
        // leaves of one child subtree.
        let mut scratch = store.clone();
        let computed = bmt::rebuild_from_level(&mut scratch, layout, engine, 0).root;
        // Each root slot roots one child subtree covering
        // arity^(root_level - 1) leaves.
        let leaves_per_slot = geom
            .arity()
            .saturating_pow(u32::from(root_level) - 1)
            .max(1);
        for slot in 0..geom.arity() as usize {
            if computed.slot(slot) != expected_root.slot(slot) {
                let first = slot as u64 * leaves_per_slot;
                if first < geom.leaves() {
                    unverifiable.push(range_of_leaves(
                        layout,
                        first,
                        leaves_per_slot.min(geom.leaves() - first),
                    ));
                }
            }
        }
        if unverifiable.is_empty() && computed != *expected_root {
            // Shapes too small for slot attribution: whole region.
            unverifiable.push(range_of_leaves(layout, 0, geom.leaves()));
        }
    }
    PinpointReport {
        recoverable: false,
        corrupt_nodes,
        unverifiable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TB: u64 = 1 << 40;

    #[test]
    fn figure10_triadnvm_points_match_paper() {
        let m = RecoveryModel::isca19();
        // Paper §5.2: at 1 TB, TriadNVM-1 = 30.68 s, -2 = 3.83 s,
        // -3 = 0.48 s.
        let t1 = m
            .recovery_time(TB, PersistScheme::triad_nvm(1))
            .as_secs_f64();
        let t2 = m
            .recovery_time(TB, PersistScheme::triad_nvm(2))
            .as_secs_f64();
        let t3 = m
            .recovery_time(TB, PersistScheme::triad_nvm(3))
            .as_secs_f64();
        assert!((t1 - 30.68).abs() < 0.05, "t1 = {t1}");
        assert!((t2 - 3.83).abs() < 0.01, "t2 = {t2}");
        assert!((t3 - 0.48).abs() < 0.01, "t3 = {t3}");
    }

    #[test]
    fn figure10_no_persist_is_about_thirty_minutes_at_1tb() {
        let m = RecoveryModel::isca19();
        let t = m.recovery_time(TB, PersistScheme::WriteBack).as_secs_f64();
        assert!(t > 1700.0 && t < 1800.0, "t = {t}"); // ≈ 29 min
    }

    #[test]
    fn strict_recovers_instantly() {
        let m = RecoveryModel::isca19();
        assert_eq!(m.recovery_time(TB, PersistScheme::Strict), Duration::ZERO);
    }

    #[test]
    fn recovery_scales_linearly_with_capacity() {
        let m = RecoveryModel::isca19();
        let t1 = m.blocks_touched(TB, PersistScheme::triad_nvm(2));
        let t8 = m.blocks_touched(8 * TB, PersistScheme::triad_nvm(2));
        let ratio = t8 as f64 / t1 as f64;
        assert!((ratio - 8.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn paper_abstract_numbers_8tb_and_64tb() {
        // "less than 4 seconds for an 8TB NVM system (30.6 seconds for
        // 64TB)" — these are the TriadNVM-3 points.
        let m = RecoveryModel::isca19();
        let t8 = m
            .recovery_time(8 * TB, PersistScheme::triad_nvm(3))
            .as_secs_f64();
        let t64 = m
            .recovery_time(64 * TB, PersistScheme::triad_nvm(3))
            .as_secs_f64();
        assert!(t8 < 4.0, "t8 = {t8}");
        assert!((t64 - 30.6).abs() < 0.3, "t64 = {t64}");
    }

    #[test]
    fn no_persist_vs_triadnvm_speedup_is_three_orders() {
        // Abstract: "3648× faster than a system without security
        // metadata persistence" (8 TB, TriadNVM-3 vs no-persist).
        let m = RecoveryModel::isca19();
        let slow = m
            .recovery_time(8 * TB, PersistScheme::WriteBack)
            .as_secs_f64();
        let fast = m
            .recovery_time(8 * TB, PersistScheme::triad_nvm(3))
            .as_secs_f64();
        let speedup = slow / fast;
        assert!(speedup > 3000.0 && speedup < 4500.0, "speedup = {speedup}");
    }

    #[test]
    fn level_counts_shrink_by_arity() {
        let m = RecoveryModel::isca19();
        let lv = m.level_counts(TB);
        assert_eq!(lv[0], 1 << 28);
        assert_eq!(lv[1], 1 << 25);
        assert_eq!(*lv.last().unwrap(), 1);
    }
}
