//! Coverage of the smaller public API surfaces: accessors, display
//! implementations, handles, stats reporting.

use triad_core::{
    CounterPersistence, KeyPolicy, PersistScheme, RecoveryReport, SecureMemoryBuilder,
};
use triad_meta::layout::RegionKind;
use triad_sim::{PhysAddr, Time};

#[test]
fn builder_accessors_round_trip() {
    let m = SecureMemoryBuilder::new()
        .scheme(PersistScheme::triad_nvm(3))
        .key_policy(KeyPolicy::DualKey)
        .key_seed(77)
        .build()
        .unwrap();
    assert_eq!(m.scheme(), PersistScheme::triad_nvm(3));
    assert_eq!(m.key_policy(), KeyPolicy::DualKey);
    assert_eq!(m.session(), 1);
    assert_eq!(m.now(), Time::ZERO);
    assert!(!m.epoch_open());
    assert!(m.config().validate().is_ok());
}

#[test]
fn secure_memory_is_send() {
    // The sharded KV serving layer moves one engine per shard onto a
    // worker thread (`triad_workloads::service`); this pin keeps the
    // engine free of thread-bound state (`Rc`, `RefCell`, raw
    // pointers) so that stays possible.
    fn assert_send<T: Send>() {}
    assert_send::<triad_core::SecureMemory>();
}

#[test]
fn region_handles_partition_the_data_space() {
    let m = SecureMemoryBuilder::new().build().unwrap();
    let p = m.persistent_region();
    let np = m.non_persistent_region();
    assert!(p.contains(p.start()));
    assert!(!p.contains(np.start()));
    assert!(np.contains(np.start()));
    assert!(p.len_bytes() > 0 && np.len_bytes() > 0);
    let last = PhysAddr(p.start().0 + p.len_bytes() - 1);
    assert!(p.contains(last));
    assert!(!p.contains(PhysAddr(last.0 + 1)));
}

#[test]
fn default_builder_equals_new() {
    let a = SecureMemoryBuilder::default().build().unwrap();
    let b = SecureMemoryBuilder::new().build().unwrap();
    assert_eq!(a.scheme(), b.scheme());
    assert_eq!(
        a.root(RegionKind::Persistent),
        b.root(RegionKind::Persistent)
    );
}

#[test]
fn report_stats_carries_all_components() {
    let mut m = SecureMemoryBuilder::new().build().unwrap();
    let p = m.persistent_region().start();
    m.write(p, b"x").unwrap();
    m.persist(p).unwrap();
    let stats = m.report_stats();
    for key in [
        "secure.persists",
        "l3.write_hits",
        "ctr_cache.read_misses",
        "mt_cache.read_hits",
        "mem.writes",
        "wear.max_writes",
    ] {
        assert!(
            stats.iter().any(|(k, _)| k == key),
            "missing {key} in:\n{stats}"
        );
    }
    assert_eq!(stats.get("secure.persists"), 1);
    assert!(
        stats.get("mem.writes") >= 3,
        "data + counter + mac at least"
    );
}

#[test]
fn recovery_report_default_is_empty() {
    let r = RecoveryReport::default();
    assert!(!r.persistent_recovered);
    assert_eq!(r.persistent_blocks_read, 0);
    assert!(r.unverifiable.is_empty());
    assert!(r.corrupt_metadata.is_empty());
}

#[test]
fn display_impls_are_informative() {
    assert_eq!(CounterPersistence::Strict.to_string(), "strict-counters");
    assert_eq!(
        CounterPersistence::Osiris { interval: 8 }.to_string(),
        "osiris-8"
    );
    assert_eq!(KeyPolicy::DualKey.to_string(), "dual-key");
    assert_eq!(PersistScheme::WriteBack.to_string(), "WriteBack");
}

#[test]
fn validate_consistency_clean_on_fresh_engine() {
    let m = SecureMemoryBuilder::new().build().unwrap();
    assert!(m.validate_consistency().is_empty());
}

#[test]
fn wear_accessor_reflects_traffic() {
    let mut m = SecureMemoryBuilder::new().build().unwrap();
    assert_eq!(m.wear().blocks_touched(), 0);
    let p = m.persistent_region().start();
    m.write(p, b"x").unwrap();
    m.persist(p).unwrap();
    assert!(m.wear().blocks_touched() >= 3);
}

#[test]
fn convenience_clock_advances_monotonically() {
    let mut m = SecureMemoryBuilder::new().build().unwrap();
    let t0 = m.now();
    let p = m.persistent_region().start();
    m.write(p, b"x").unwrap();
    let t1 = m.now();
    m.persist(p).unwrap();
    let t2 = m.now();
    assert!(t1 >= t0);
    assert!(t2 > t1, "a persist takes real simulated time");
}

#[test]
fn cross_block_write_rejected() {
    let mut m = SecureMemoryBuilder::new().build().unwrap();
    let p = m.persistent_region().start();
    let straddle = PhysAddr(p.0 + 60);
    assert!(m.write(straddle, &[0u8; 8]).is_err());
    // Within one block is fine, at any offset.
    m.write(straddle, &[1u8; 4]).unwrap();
    assert_eq!(m.read(p).unwrap()[60..64], [1u8; 4]);
}
