//! End-to-end behaviour of the secure memory engine: crash
//! consistency, recovery, tamper detection, replay attacks, lazy
//! non-persistent recovery, and the §3.3.5 READY_BIT protocol.

use triad_core::{IntegrityKind, KeyPolicy, PersistScheme, SecureMemoryBuilder, SecureMemoryError};
use triad_meta::layout::RegionKind;
use triad_sim::PhysAddr;

fn build(scheme: PersistScheme) -> triad_core::SecureMemory {
    SecureMemoryBuilder::new().scheme(scheme).build().unwrap()
}

#[test]
fn write_read_round_trip_both_regions() {
    let mut m = build(PersistScheme::triad_nvm(1));
    let p = m.persistent_region().start();
    let np = m.non_persistent_region().start();
    m.write(p, b"persistent!").unwrap();
    m.write(np, b"volatile!").unwrap();
    assert_eq!(&m.read(p).unwrap()[..11], b"persistent!");
    assert_eq!(&m.read(np).unwrap()[..9], b"volatile!");
}

#[test]
fn unwritten_blocks_read_zero() {
    let mut m = build(PersistScheme::triad_nvm(1));
    let p = m.persistent_region().start();
    let np = m.non_persistent_region().start();
    assert_eq!(m.read(p).unwrap(), [0u8; 64]);
    assert_eq!(m.read(PhysAddr(np.0 + 4096)).unwrap(), [0u8; 64]);
}

#[test]
fn out_of_range_rejected() {
    let mut m = build(PersistScheme::triad_nvm(1));
    // Counter area of the persistent region is not data.
    let counter_area = m.memory_map().persistent().counter_start.base();
    assert!(matches!(
        m.read(counter_area),
        Err(SecureMemoryError::OutOfRange { .. })
    ));
    let way_out = PhysAddr(1 << 40);
    assert!(matches!(
        m.read(way_out),
        Err(SecureMemoryError::OutOfRange { .. })
    ));
}

#[test]
fn persisted_data_survives_crash_under_every_triad_scheme() {
    for scheme in [
        PersistScheme::triad_nvm(1),
        PersistScheme::triad_nvm(2),
        PersistScheme::triad_nvm(3),
        PersistScheme::Strict,
    ] {
        let mut m = build(scheme);
        let p = m.persistent_region().start();
        for i in 0..32u64 {
            let addr = PhysAddr(p.0 + i * 64);
            m.write(addr, &i.to_le_bytes()).unwrap();
            m.persist(addr).unwrap();
        }
        m.crash();
        let report = m.recover().unwrap();
        assert!(report.persistent_recovered, "{scheme}: {report:?}");
        for i in 0..32u64 {
            let addr = PhysAddr(p.0 + i * 64);
            let data = m.read(addr).unwrap();
            assert_eq!(&data[..8], &i.to_le_bytes(), "{scheme} block {i}");
        }
    }
}

#[test]
fn unpersisted_store_is_lost_but_recovery_succeeds() {
    let mut m = build(PersistScheme::triad_nvm(2));
    let p = m.persistent_region().start();
    m.write(p, b"durable").unwrap();
    m.persist(p).unwrap();
    m.write(p, b"too-late").unwrap(); // never persisted
    m.crash();
    assert!(m.recover().unwrap().persistent_recovered);
    // The persisted version is back; the cached-only store vanished.
    assert_eq!(&m.read(p).unwrap()[..7], b"durable");
}

#[test]
fn non_persistent_data_is_discarded_at_reboot() {
    let mut m = build(PersistScheme::triad_nvm(1));
    let np = m.non_persistent_region().start();
    m.write(np, b"scratch").unwrap();
    assert_eq!(&m.read(np).unwrap()[..7], b"scratch");
    m.crash();
    m.recover().unwrap();
    assert_eq!(m.read(np).unwrap(), [0u8; 64], "np data must not survive");
}

#[test]
fn operations_fail_between_crash_and_recovery() {
    let mut m = build(PersistScheme::triad_nvm(1));
    let p = m.persistent_region().start();
    m.crash();
    assert!(matches!(m.read(p), Err(SecureMemoryError::NeedsRecovery)));
    assert!(matches!(
        m.write(p, b"x"),
        Err(SecureMemoryError::NeedsRecovery)
    ));
    m.recover().unwrap();
    m.write(p, b"x").unwrap();
}

#[test]
fn session_counter_bumps_every_boot() {
    let mut m = build(PersistScheme::triad_nvm(1));
    assert_eq!(m.session(), 1);
    m.crash();
    let r = m.recover().unwrap();
    assert_eq!(r.session, 2);
    m.crash();
    assert_eq!(m.recover().unwrap().session, 3);
}

#[test]
fn np_lazy_counter_initialisation_after_crash() {
    let mut m = build(PersistScheme::triad_nvm(1));
    let np = m.non_persistent_region().start();
    // Force counters into NVM: write enough distinct pages to overflow
    // caches, so stale counter state exists at crash time.
    for i in 0..2000u64 {
        m.write(
            PhysAddr(np.0 + i * 4096 % m.non_persistent_region().len_bytes()),
            b"x",
        )
        .unwrap();
    }
    m.crash();
    m.recover().unwrap();
    let inits_before = m.stats().lazy_counter_inits;
    // Writing again triggers first-touch lazy initialisation when the
    // dirty data drains and needs its counter.
    for i in 0..2000u64 {
        m.write(
            PhysAddr(np.0 + i * 4096 % m.non_persistent_region().len_bytes()),
            b"y",
        )
        .unwrap();
    }
    // Flush things through by reading widely.
    for i in 0..2000u64 {
        let _ = m.read(PhysAddr(
            np.0 + i * 4096 % m.non_persistent_region().len_bytes(),
        ));
    }
    assert!(
        m.stats().lazy_counter_inits > inits_before,
        "expected lazy inits after reboot, stats: {:?}",
        m.stats()
    );
}

#[test]
fn tampered_ciphertext_is_detected() {
    let mut m = build(PersistScheme::triad_nvm(1));
    let p = m.persistent_region().start();
    m.write(p, b"secret").unwrap();
    m.persist(p).unwrap();
    m.crash();
    m.recover().unwrap();
    // Attacker flips a ciphertext bit in NVM.
    let block = p.block();
    let mut mask = [0u8; 64];
    mask[0] = 0x80;
    m.nvm_image_mut().tamper(block, mask);
    assert!(matches!(
        m.read(p),
        Err(SecureMemoryError::MacMismatch { .. })
    ));
}

#[test]
fn tampered_counter_is_detected_at_recovery_under_triadnvm1() {
    // TriadNVM-1 rebuilds from the counter blocks themselves, so a
    // tampered counter makes the recomputed root mismatch immediately.
    let mut m = build(PersistScheme::triad_nvm(1));
    let p = m.persistent_region().start();
    m.write(p, b"secret").unwrap();
    m.persist(p).unwrap();
    let counter_block = m.memory_map().persistent().counter_block_of(p.block());
    m.crash();
    let mut mask = [0u8; 64];
    mask[8] = 1; // flip a minor counter bit
    m.nvm_image_mut().tamper(counter_block, mask);
    let report = m.recover().unwrap();
    assert!(
        !report.persistent_recovered,
        "tampered counter must not verify: {report:?}"
    );
    assert!(!report.unverifiable.is_empty());
}

#[test]
fn tampered_counter_is_detected_at_access_under_triadnvm2() {
    // TriadNVM-2 recovery trusts the strictly persisted L1 and never
    // re-reads counters; the tampered counter is caught on first fetch,
    // pinpointed by its L1 slot (§5.2's access-time resolution).
    let mut m = build(PersistScheme::triad_nvm(2));
    let p = m.persistent_region().start();
    let far = PhysAddr(p.0 + 64 * 4096); // different L1 subtree
    m.write(p, b"secret").unwrap();
    m.persist(p).unwrap();
    m.write(far, b"other").unwrap();
    m.persist(far).unwrap();
    let counter_block = m.memory_map().persistent().counter_block_of(p.block());
    m.crash();
    let mut mask = [0u8; 64];
    mask[8] = 1;
    m.nvm_image_mut().tamper(counter_block, mask);
    let report = m.recover().unwrap();
    assert!(report.persistent_recovered, "{report:?}");
    assert!(matches!(
        m.read(p),
        Err(SecureMemoryError::IntegrityViolation {
            kind: IntegrityKind::Counter,
            ..
        })
    ));
    // Unaffected subtrees stay readable.
    assert_eq!(&m.read(far).unwrap()[..5], b"other");
}

#[test]
fn within_boot_counter_tamper_detected_on_fetch() {
    let mut m = build(PersistScheme::triad_nvm(1));
    let p = m.persistent_region().start();
    // Touch many pages so the target counter is evicted from the
    // counter cache and must be re-fetched (and verified) later.
    m.write(p, b"secret").unwrap();
    m.persist(p).unwrap();
    let counter_block = m.memory_map().persistent().counter_block_of(p.block());
    let mut mask = [0u8; 64];
    mask[8] = 1;
    m.nvm_image_mut().tamper(counter_block, mask);
    let region_len = m.persistent_region().len_bytes();
    for i in 0..3000u64 {
        // Never touch the target page itself (offset past page 0).
        let addr = PhysAddr(p.0 + 4096 + (i * 4096) % (region_len - 8192));
        m.write(addr, b"fill").unwrap();
    }
    let result = m.read(p);
    assert!(
        matches!(
            result,
            Err(SecureMemoryError::IntegrityViolation {
                kind: IntegrityKind::Counter,
                ..
            })
        ),
        "stale/tampered counter must fail verification, got {result:?}"
    );
}

#[test]
fn replay_attack_rolling_back_data_mac_and_counter_is_detected() {
    let mut m = build(PersistScheme::triad_nvm(2));
    let p = m.persistent_region().start();
    let layout = m.memory_map().persistent().clone();
    let block = p.block();
    let ctr = layout.counter_block_of(block);
    let mac = layout.mac_block_of(block);

    m.write(p, b"version-1").unwrap();
    m.persist(p).unwrap();
    // Capture the full old state (data + MAC + counter).
    let old_data = m.nvm_image().read(block);
    let old_mac = m.nvm_image().read(mac);
    let old_ctr = m.nvm_image().read(ctr);

    m.write(p, b"version-2").unwrap();
    m.persist(p).unwrap();
    m.crash();

    // Replay everything: without the BMT this would decrypt cleanly to
    // "version-1" — the §2.2 counter-replay attack. Under TriadNVM-2
    // recovery itself succeeds (it trusts the persisted L1, which still
    // reflects the new counter), but the rolled-back counter can never
    // verify against it.
    m.nvm_image_mut().rollback_to(block, old_data);
    m.nvm_image_mut().rollback_to(mac, old_mac);
    m.nvm_image_mut().rollback_to(ctr, old_ctr);

    m.recover().unwrap();
    assert!(
        matches!(
            m.read(p),
            Err(SecureMemoryError::IntegrityViolation {
                kind: IntegrityKind::Counter,
                ..
            })
        ),
        "counter replay must be caught at access"
    );
}

#[test]
fn replay_attack_is_caught_at_recovery_under_triadnvm1() {
    let mut m = build(PersistScheme::triad_nvm(1));
    let p = m.persistent_region().start();
    let layout = m.memory_map().persistent().clone();
    let block = p.block();
    let ctr = layout.counter_block_of(block);
    let mac = layout.mac_block_of(block);
    m.write(p, b"version-1").unwrap();
    m.persist(p).unwrap();
    let old = (
        m.nvm_image().read(block),
        m.nvm_image().read(mac),
        m.nvm_image().read(ctr),
    );
    m.write(p, b"version-2").unwrap();
    m.persist(p).unwrap();
    m.crash();
    m.nvm_image_mut().rollback_to(block, old.0);
    m.nvm_image_mut().rollback_to(mac, old.1);
    m.nvm_image_mut().rollback_to(ctr, old.2);
    let report = m.recover().unwrap();
    assert!(
        !report.persistent_recovered,
        "TriadNVM-1 rebuilds from counters: replay breaks the root: {report:?}"
    );
}

#[test]
fn crash_during_atomic_persist_replays_from_registers() {
    for crash_after in 0..4u64 {
        let mut m = build(PersistScheme::triad_nvm(2));
        let p = m.persistent_region().start();
        m.write(p, b"stable").unwrap();
        m.persist(p).unwrap();
        // Arm the hook: the next atomic persist crashes after
        // `crash_after` of its WPQ copies.
        m.write(p, b"update").unwrap();
        m.inject_crash_after_wpq_writes(crash_after);
        let err = m.persist(p).unwrap_err();
        assert_eq!(err, SecureMemoryError::NeedsRecovery);
        let report = m.recover().unwrap();
        assert!(
            report.persistent_recovered,
            "crash after {crash_after} copies: {report:?}"
        );
        assert!(
            report.replayed_staged_writes > 0,
            "READY_BIT was set, replay expected"
        );
        // The atomic update completed via replay: the new value is in.
        assert_eq!(&m.read(p).unwrap()[..6], b"update");
    }
}

#[test]
fn writeback_scheme_cannot_recover_persistent_region() {
    let mut m = build(PersistScheme::WriteBack);
    let p = m.persistent_region().start();
    m.write(p, b"doomed").unwrap();
    m.persist(p).unwrap(); // data reaches NVM, metadata does not
    m.crash();
    let report = m.recover().unwrap();
    assert!(!report.persistent_recovered);
    assert!(matches!(
        m.read(p),
        Err(SecureMemoryError::Unverifiable { .. })
    ));
    // Formatting restores usability (data is gone, of course).
    m.format_persistent();
    assert_eq!(m.read(p).unwrap(), [0u8; 64]);
    m.write(p, b"fresh").unwrap();
    assert_eq!(&m.read(p).unwrap()[..5], b"fresh");
}

#[test]
fn np_ciphertext_differs_across_sessions_for_same_plaintext_and_counter() {
    // §3.3.2: after reboot the stale np counter would repeat, but the
    // session counter (or volatile key) changes the pad.
    let run = |policy: KeyPolicy| {
        let mut m = SecureMemoryBuilder::new()
            .scheme(PersistScheme::triad_nvm(1))
            .key_policy(policy)
            .build()
            .unwrap();
        let np = m.non_persistent_region().start();
        let block = np.block();
        let capture = |m: &mut triad_core::SecureMemory| {
            // Write, then force the block to NVM through eviction
            // pressure, and capture the ciphertext from the image.
            let len = m.non_persistent_region().len_bytes();
            m.nvm_image_mut().write(np.block(), [0u8; 64]);
            m.write(np, b"same-plaintext").unwrap();
            for i in 1..60000u64 {
                let addr = PhysAddr(np.0 + (i * 64) % len);
                m.write(addr, b"evict-pressure").unwrap();
                let ct = m.nvm_image().read(block);
                if ct != [0u8; 64] {
                    return ct;
                }
            }
            panic!("target block never reached NVM");
        };
        let ct1 = capture(&mut m);
        m.crash();
        m.recover().unwrap();
        let ct2 = capture(&mut m);
        (ct1, ct2)
    };
    for policy in [KeyPolicy::SessionCounter, KeyPolicy::DualKey] {
        let (ct1, ct2) = run(policy);
        assert_ne!(
            ct1, ct2,
            "{policy:?}: pad reuse across boots — ciphertexts collide"
        );
    }
}

#[test]
fn minor_counter_overflow_reencrypts_page_and_preserves_neighbours() {
    let mut m = build(PersistScheme::triad_nvm(1));
    let p = m.persistent_region().start();
    let neighbour = PhysAddr(p.0 + 64); // same 4 KiB page
    m.write(neighbour, b"neighbour").unwrap();
    m.persist(neighbour).unwrap();
    // 128 persists of the same block overflow its 7-bit minor counter.
    for i in 0..130u32 {
        m.write(p, &i.to_le_bytes()).unwrap();
        m.persist(p).unwrap();
    }
    assert!(m.stats().page_reencryptions >= 1, "{:?}", m.stats());
    assert_eq!(&m.read(neighbour).unwrap()[..9], b"neighbour");
    assert_eq!(&m.read(p).unwrap()[..4], &129u32.to_le_bytes());
    // And everything still survives a crash.
    m.crash();
    assert!(m.recover().unwrap().persistent_recovered);
    assert_eq!(&m.read(neighbour).unwrap()[..9], b"neighbour");
    assert_eq!(&m.read(p).unwrap()[..4], &129u32.to_le_bytes());
}

#[test]
fn pinpointing_isolates_double_corruption_to_pages() {
    // §5.2: under TriadNVM-2, uncorrectable errors in BOTH a counter
    // and an L1 node defeat every rebuild, and the pinpoint procedure
    // bounds the damage using the persisted L1 — page-granular ranges
    // instead of declaring the whole region unverifiable.
    let mut m = build(PersistScheme::triad_nvm(2));
    let p = m.persistent_region().start();
    let far = PhysAddr(p.0 + 100 * 4096);
    m.write(p, b"a").unwrap();
    m.persist(p).unwrap();
    m.write(far, b"b").unwrap();
    m.persist(far).unwrap();
    m.crash();
    let layout = m.memory_map().persistent().clone();
    let ctr = layout.counter_block_of(p.block());
    let l1_of_far = layout
        .bmt_node_addr(
            1,
            layout.leaf_index(layout.counter_block_of(far.block())) / 8,
        )
        .unwrap();
    let mut mask = [0u8; 64];
    mask[20] = 0xFF;
    m.nvm_image_mut().tamper(ctr, mask); // corrupt counter (leaf)
    m.nvm_image_mut().tamper(l1_of_far, mask); // corrupt an L1 node
    let report = m.recover().unwrap();
    assert!(!report.persistent_recovered, "{report:?}");
    assert!(!report.unverifiable.is_empty());
    let total_unverifiable: u64 = report.unverifiable.iter().map(|r| r.bytes).sum();
    let region_bytes = m.persistent_region().len_bytes();
    assert!(
        total_unverifiable < region_bytes / 4,
        "damage should be bounded, not the whole region: {total_unverifiable} of {region_bytes}"
    );
}

#[test]
fn corrupt_stored_l1_node_is_rebuilt_from_counters() {
    let mut m = build(PersistScheme::triad_nvm(2));
    let p = m.persistent_region().start();
    m.write(p, b"x").unwrap();
    m.persist(p).unwrap();
    m.crash();
    // Corrupt a persisted L1 node: counters are intact, so recovery
    // rebuilds the level and still verifies.
    let l1 = m.memory_map().persistent().bmt_node_addr(1, 0).unwrap();
    let mut mask = [0u8; 64];
    mask[0] = 0xAA;
    m.nvm_image_mut().tamper(l1, mask);
    let report = m.recover().unwrap();
    assert!(report.persistent_recovered, "{report:?}");
    assert!(
        report.corrupt_metadata.iter().any(|(lvl, _)| *lvl == 1),
        "the corrupt L1 node should be identified: {report:?}"
    );
    assert_eq!(&m.read(p).unwrap()[..1], b"x");
}

#[test]
fn recovery_reads_scale_with_scheme_level() {
    let blocks_read = |scheme| {
        let mut m = build(scheme);
        let p = m.persistent_region().start();
        m.write(p, b"x").unwrap();
        m.persist(p).unwrap();
        m.crash();
        m.recover().unwrap().persistent_blocks_read
    };
    let t1 = blocks_read(PersistScheme::triad_nvm(1));
    let t2 = blocks_read(PersistScheme::triad_nvm(2));
    let t3 = blocks_read(PersistScheme::triad_nvm(3));
    assert!(t1 > t2, "t1 {t1} > t2 {t2}");
    assert!(t2 > t3, "t2 {t2} > t3 {t3}");
}

#[test]
fn recover_on_running_system_is_a_no_op() {
    let mut m = build(PersistScheme::triad_nvm(1));
    let r = m.recover().unwrap();
    assert!(r.persistent_recovered);
    assert_eq!(r.session, 1, "no new session without a crash");
}

#[test]
fn persist_outside_persistent_region_rejected() {
    let mut m = build(PersistScheme::triad_nvm(1));
    let np = m.non_persistent_region().start();
    m.write(np, b"x").unwrap();
    let err = m
        .persist_block(np.block(), [0u8; 64], triad_sim::Time::ZERO)
        .unwrap_err();
    assert!(matches!(err, SecureMemoryError::NotPersistent { .. }));
}

#[test]
fn roots_differ_between_regions_and_change_with_writes() {
    let mut m = build(PersistScheme::triad_nvm(1));
    let root_before = m.root(RegionKind::Persistent);
    let p = m.persistent_region().start();
    m.write(p, b"x").unwrap();
    m.persist(p).unwrap();
    let root_after = m.root(RegionKind::Persistent);
    assert_ne!(root_before, root_after, "persist must move the root");
    assert_ne!(
        m.root(RegionKind::Persistent),
        m.root(RegionKind::NonPersistent)
    );
}

#[test]
fn stats_track_persist_vs_evict_metadata_writes() {
    let mut m = build(PersistScheme::Strict);
    let p = m.persistent_region().start();
    for i in 0..16u64 {
        let a = PhysAddr(p.0 + i * 64);
        m.write(a, b"x").unwrap();
        m.persist(a).unwrap();
    }
    let s = m.stats();
    assert_eq!(s.persists, 16);
    assert!(s.persist_metadata_writes() >= 16 * 2, "{s:?}");
    assert_eq!(s.atomic_persists, 16);
}

#[test]
fn monolithic_counters_work_end_to_end() {
    use triad_sim::config::CounterMode;
    let mut m = SecureMemoryBuilder::new()
        .scheme(PersistScheme::triad_nvm(2))
        .counter_mode(CounterMode::Monolithic)
        .build()
        .unwrap();
    // Geometry: one counter block per 8 data blocks (8× the split
    // organisation's metadata).
    let layout = m.memory_map().persistent().clone();
    assert_eq!(layout.counter_coverage, 8);
    assert_eq!(layout.counter_blocks, layout.data_blocks / 8);
    let p = m.persistent_region().start();
    for i in 0..32u64 {
        let a = PhysAddr(p.0 + i * 64);
        m.write(a, &i.to_le_bytes()).unwrap();
        m.persist(a).unwrap();
    }
    // Overflow impossibility: 200 writes to one block never re-encrypt.
    for i in 0..200u32 {
        m.write(p, &i.to_le_bytes()).unwrap();
        m.persist(p).unwrap();
    }
    assert_eq!(m.stats().page_reencryptions, 0);
    m.crash();
    assert!(m.recover().unwrap().persistent_recovered);
    assert_eq!(&m.read(p).unwrap()[..4], &199u32.to_le_bytes());
    for i in 1..32u64 {
        assert_eq!(
            &m.read(PhysAddr(p.0 + i * 64)).unwrap()[..8],
            &i.to_le_bytes()
        );
    }
    // Tampering still detected.
    let ctr = layout.counter_block_of(p.block());
    let mut mask = [0u8; 64];
    mask[0] = 1;
    m.nvm_image_mut().tamper(ctr, mask);
    m.crash();
    m.recover().unwrap();
    assert!(m.read(p).is_err());
}

#[test]
fn tampering_mac_block_is_detected() {
    let mut m = build(PersistScheme::triad_nvm(1));
    let p = m.persistent_region().start();
    m.write(p, b"secret").unwrap();
    m.persist(p).unwrap();
    m.crash();
    m.recover().unwrap();
    let mac = m.memory_map().persistent().mac_block_of(p.block());
    let slot = m.memory_map().persistent().mac_slot_of(p.block());
    let mut mask = [0u8; 64];
    mask[slot * 8] = 1;
    m.nvm_image_mut().tamper(mac, mask);
    assert!(matches!(
        m.read(p),
        Err(SecureMemoryError::MacMismatch { .. })
    ));
}
