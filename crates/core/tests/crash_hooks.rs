//! Crash-hook composition pins (issue-9 satellite).
//!
//! Two engine-level hooks exist — the persist-boundary hook and the
//! WPQ-write hook — and `triad-recov` adds a third, scheduler-level
//! per-thread hook on top. The composition contract pinned here:
//! **whichever hook fires first wins**, and firing disarms every other
//! armed hook, so the loser can never fire spuriously after recovery.
//! The typed arming API rejects conflicting re-arms outright.

use triad_core::{
    CrashHookKind, PersistScheme, SecureMemory, SecureMemoryBuilder, SecureMemoryError,
};

fn mem() -> SecureMemory {
    SecureMemoryBuilder::new()
        .scheme(PersistScheme::triad_nvm(2))
        .build()
        .unwrap()
}

#[test]
fn typed_arming_rejects_conflicting_rearm() {
    let mut m = mem();
    m.arm_crash(CrashHookKind::PersistBoundary, 3).unwrap();
    assert_eq!(
        m.arm_crash(CrashHookKind::WpqWrite, 1).unwrap_err(),
        SecureMemoryError::CrashHookArmed {
            existing: CrashHookKind::PersistBoundary,
            requested: CrashHookKind::WpqWrite,
        }
    );
    // Same-kind re-arm is rejected too: the typed API has no silent
    // overwrite at all.
    assert_eq!(
        m.arm_crash(CrashHookKind::PersistBoundary, 9).unwrap_err(),
        SecureMemoryError::CrashHookArmed {
            existing: CrashHookKind::PersistBoundary,
            requested: CrashHookKind::PersistBoundary,
        }
    );
    m.disarm_crash_hooks();
    assert_eq!(m.armed_crash_hook(), None);
    m.arm_crash(CrashHookKind::WpqWrite, 1).unwrap();
    assert_eq!(m.armed_crash_hook(), Some(CrashHookKind::WpqWrite));
}

#[test]
fn persist_boundary_fire_disarms_the_wpq_hook() {
    let mut m = mem();
    let a = m.persistent_region().start();
    // Arm both through the legacy API: persist-boundary fires first
    // (boundary 0 = the very next durability point), while the WPQ
    // hook is armed far in the future.
    m.inject_crash_after_persists(0);
    m.inject_crash_after_wpq_writes(1_000_000);
    m.write(a, &[7u8; 64]).unwrap();
    assert_eq!(m.persist(a).unwrap_err(), SecureMemoryError::NeedsRecovery);
    // First fire wins: the WPQ hook must be gone, or it would fire
    // spuriously in some later (post-recovery) atomic persist.
    assert_eq!(m.armed_crash_hook(), None);
    m.recover().unwrap();
    for i in 0..32u64 {
        m.write(triad_sim::PhysAddr(a.0 + i * 64), &[i as u8; 64])
            .unwrap();
        m.persist(triad_sim::PhysAddr(a.0 + i * 64)).unwrap();
    }
}

#[test]
fn wpq_fire_disarms_the_persist_boundary_hook() {
    let mut m = mem();
    let a = m.persistent_region().start();
    // WPQ hook fires inside the first atomic persist (after one WPQ
    // copy); the persist-boundary hook is armed for a boundary that
    // the crash preempts.
    m.inject_crash_after_wpq_writes(1);
    m.inject_crash_after_persists(5);
    m.write(a, &[9u8; 64]).unwrap();
    assert_eq!(m.persist(a).unwrap_err(), SecureMemoryError::NeedsRecovery);
    assert_eq!(
        m.armed_crash_hook(),
        None,
        "first fire must disarm the persist-boundary hook too"
    );
    m.recover().unwrap();
    // Plenty of further durability points: none may crash.
    for i in 0..16u64 {
        m.write(triad_sim::PhysAddr(a.0 + i * 64), &[i as u8; 64])
            .unwrap();
        m.persist(triad_sim::PhysAddr(a.0 + i * 64)).unwrap();
    }
}

#[test]
fn armed_hook_reports_and_typed_arm_fires_like_legacy() {
    let mut m = mem();
    let a = m.persistent_region().start();
    m.arm_crash(CrashHookKind::PersistBoundary, 0).unwrap();
    assert_eq!(m.armed_crash_hook(), Some(CrashHookKind::PersistBoundary));
    m.write(a, &[1u8; 64]).unwrap();
    assert_eq!(m.persist(a).unwrap_err(), SecureMemoryError::NeedsRecovery);
    m.recover().unwrap();
    m.write(a, &[2u8; 64]).unwrap();
    m.persist(a).unwrap();
    assert_eq!(m.read(a).unwrap(), [2u8; 64]);
}

#[test]
fn crash_hook_error_displays() {
    let e = SecureMemoryError::CrashHookArmed {
        existing: CrashHookKind::WpqWrite,
        requested: CrashHookKind::PersistBoundary,
    };
    let msg = e.to_string();
    assert!(msg.contains("WPQ-write"), "{msg}");
    assert!(msg.contains("persist-boundary"), "{msg}");
    assert!(msg.contains("first fire wins"), "{msg}");
}
