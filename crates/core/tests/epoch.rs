//! The epoch-persistency extension (Liu et al.'s relaxation, which the
//! paper cites as orthogonal to Triad-NVM): persists inside an epoch
//! are deferred and write-combined; durability is guaranteed only at
//! the epoch boundary.

use triad_core::{PersistScheme, SecureMemoryBuilder};
use triad_sim::{PhysAddr, Time};

fn build() -> triad_core::SecureMemory {
    SecureMemoryBuilder::new()
        .scheme(PersistScheme::triad_nvm(2))
        .build()
        .unwrap()
}

#[test]
fn epoch_defers_and_combines_persists() {
    let mut m = build();
    let p = m.persistent_region().start();
    m.begin_epoch().unwrap();
    assert!(m.epoch_open());
    // 50 persists of the same block inside one epoch…
    for i in 0..50u64 {
        m.persist_block(
            p.block(),
            {
                let mut b = [0u8; 64];
                b[..8].copy_from_slice(&i.to_le_bytes());
                b
            },
            Time::ZERO,
        )
        .unwrap();
    }
    // …perform no atomic metadata persists until the boundary.
    assert_eq!(m.stats().atomic_persists, 0);
    m.end_epoch(Time::ZERO).unwrap();
    assert!(!m.epoch_open());
    // Exactly one combined write-back.
    assert_eq!(m.stats().atomic_persists, 1);
    assert_eq!(m.stats().epochs, 1);
    // And it is durable.
    m.crash();
    assert!(m.recover().unwrap().persistent_recovered);
    assert_eq!(&m.read(p).unwrap()[..8], &49u64.to_le_bytes());
}

#[test]
fn epoch_boundary_guarantees_every_member() {
    let mut m = build();
    let p = m.persistent_region().start();
    m.begin_epoch().unwrap();
    for i in 0..16u64 {
        let a = PhysAddr(p.0 + i * 4096);
        m.write(a, &i.to_le_bytes()).unwrap();
        m.persist_block(
            a.block(),
            {
                let mut b = [0u8; 64];
                b[..8].copy_from_slice(&i.to_le_bytes());
                b
            },
            Time::ZERO,
        )
        .unwrap();
    }
    m.end_epoch(Time::ZERO).unwrap();
    m.crash();
    m.recover().unwrap();
    for i in 0..16u64 {
        let a = PhysAddr(p.0 + i * 4096);
        assert_eq!(&m.read(a).unwrap()[..8], &i.to_le_bytes(), "block {i}");
    }
}

#[test]
fn crash_inside_epoch_may_lose_its_persists_but_stays_consistent() {
    let mut m = build();
    let p = m.persistent_region().start();
    // Pre-epoch durable baseline.
    m.write(p, b"baseline").unwrap();
    m.persist(p).unwrap();
    m.begin_epoch().unwrap();
    m.persist_block(p.block(), [7u8; 64], Time::ZERO).unwrap();
    // Crash before the boundary: the deferred persist is allowed to be
    // lost, but recovery must verify and the baseline must remain.
    m.crash();
    let report = m.recover().unwrap();
    assert!(report.persistent_recovered, "{report:?}");
    let data = m.read(p).unwrap();
    assert!(
        &data[..8] == b"baseline" || data == [7u8; 64],
        "either pre-epoch or (if naturally evicted) epoch value: {data:?}"
    );
    assert!(!m.epoch_open(), "crash closes the epoch");
}

#[test]
fn end_epoch_without_begin_is_a_typed_error() {
    let mut m = build();
    assert_eq!(
        m.end_epoch(Time::ZERO),
        Err(triad_core::SecureMemoryError::EpochNotOpen)
    );
    // The unbalanced close changes nothing: no epoch is counted and
    // the engine keeps running (callers may recover and continue).
    assert_eq!(m.stats().epochs, 0);
    assert!(!m.epoch_open());
    m.begin_epoch().unwrap();
    m.end_epoch(Time::ZERO).unwrap();
    assert_eq!(m.stats().epochs, 1);
}

#[test]
fn nested_epochs_rejected() {
    let mut m = build();
    m.begin_epoch().unwrap();
    assert_eq!(
        m.begin_epoch(),
        Err(triad_core::SecureMemoryError::EpochAlreadyOpen)
    );
    // The original epoch is untouched by the rejected reentry.
    assert!(m.epoch_open());
    m.end_epoch(Time::ZERO).unwrap();
    assert!(!m.epoch_open());
}

#[test]
fn epoch_reduces_metadata_write_traffic() {
    // Same workload, per-persist vs one epoch: the epoch must issue
    // far fewer metadata persists (the Liu et al. win).
    let run = |epoch: bool| {
        let mut m = build();
        let p = m.persistent_region().start();
        if epoch {
            m.begin_epoch().unwrap();
        }
        for i in 0..200u64 {
            // 200 persists over 8 hot blocks.
            let a = PhysAddr(p.0 + (i % 8) * 64);
            let mut b = [0u8; 64];
            b[..8].copy_from_slice(&i.to_le_bytes());
            m.persist_block(a.block(), b, Time::ZERO).unwrap();
        }
        if epoch {
            m.end_epoch(Time::ZERO).unwrap();
        }
        m.stats().persist_metadata_writes()
    };
    let strict = run(false);
    let epoch = run(true);
    assert!(
        epoch * 10 <= strict,
        "epoch ({epoch}) should cut metadata persists ≥10× vs per-op ({strict})"
    );
}
