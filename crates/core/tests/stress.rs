//! Stress tests with pathologically small metadata caches: every
//! operation triggers eviction chains through the counter/MT caches,
//! exercising the queued-writeback machinery, reclaim of in-flight
//! victims, and the lazy parent-slot propagation discipline (§3.2) far
//! beyond what the Table 1 geometry would.

use triad_core::{PersistScheme, SecureMemoryBuilder};
use triad_sim::config::{CacheConfig, CounterMode, SystemConfig};
use triad_sim::PhysAddr;

fn stress_config() -> SystemConfig {
    let mut cfg = SystemConfig::tiny();
    // 4 lines each: constant thrash.
    cfg.security.counter_cache = CacheConfig::new(4 * 64, 2, 3);
    cfg.security.mt_cache = CacheConfig::new(4 * 64, 2, 3);
    cfg.l3 = CacheConfig::new(8 * 64, 2, 32);
    cfg
}

fn build(scheme: PersistScheme) -> triad_core::SecureMemory {
    SecureMemoryBuilder::new()
        .config(stress_config())
        .scheme(scheme)
        .build()
        .unwrap()
}

#[test]
fn thrashing_metadata_caches_stay_verifiable() {
    for scheme in [
        PersistScheme::WriteBack,
        PersistScheme::triad_nvm(1),
        PersistScheme::triad_nvm(3),
        PersistScheme::Strict,
    ] {
        let mut m = build(scheme);
        let p = m.persistent_region().start();
        let np = m.non_persistent_region().start();
        let p_len = m.persistent_region().len_bytes();
        let np_len = m.non_persistent_region().len_bytes();
        // Interleave regions and strides so counters, MACs and nodes
        // from many subtrees fight over 4-line caches.
        for i in 0..3000u64 {
            let pa = PhysAddr(p.0 + (i * 37 * 64) % p_len);
            let na = PhysAddr(np.0 + (i * 53 * 64) % np_len);
            m.write(pa, &i.to_le_bytes()).unwrap();
            m.write(na, &i.to_le_bytes()).unwrap();
            if i % 7 == 0 {
                m.persist(pa).unwrap();
            }
            if i % 11 == 0 {
                let back = PhysAddr(p.0 + ((i / 2) * 37 * 64) % p_len);
                let _ = m.read(back).unwrap();
            }
        }
        // Heavy eviction traffic must have happened…
        assert!(
            m.stats().evict_metadata_writes() > 100,
            "{scheme}: {:?}",
            m.stats()
        );
        // …and every block must still read back consistently.
        let mut failures = 0;
        for i in (0..3000u64).step_by(97) {
            let pa = PhysAddr(p.0 + (i * 37 * 64) % p_len);
            if m.read(pa).is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 0, "{scheme}: integrity violations under thrash");
        // The engine's own invariant checker agrees.
        let problems = m.validate_consistency();
        assert!(problems.is_empty(), "{scheme}: {problems:?}");
    }
}

#[test]
fn thrash_then_crash_then_recover() {
    let mut m = build(PersistScheme::triad_nvm(2));
    let p = m.persistent_region().start();
    let p_len = m.persistent_region().len_bytes();
    let mut persisted = Vec::new();
    for i in 0..1500u64 {
        let pa = PhysAddr(p.0 + (i * 41 * 64) % p_len);
        m.write(pa, &i.to_le_bytes()).unwrap();
        if i % 5 == 0 {
            m.persist(pa).unwrap();
            persisted.push((pa, i));
        }
    }
    m.crash();
    let report = m.recover().unwrap();
    assert!(report.persistent_recovered, "{report:?}");
    // Every persisted value (that was not later overwritten through
    // the same address) must be at least as new as when persisted.
    let mut newest = std::collections::HashMap::new();
    for (pa, i) in persisted {
        newest.insert(pa.0, i);
    }
    for (&addr, &floor) in &newest {
        let got = m.read(PhysAddr(addr)).unwrap();
        let value = u64::from_le_bytes(got[..8].try_into().unwrap());
        assert!(
            value >= floor,
            "addr {addr:#x}: {value} rolled back below {floor}"
        );
    }
}

#[test]
fn monolithic_counters_survive_thrash_and_crash() {
    let mut cfg = stress_config();
    cfg.security.counter_mode = CounterMode::Monolithic;
    let mut m = SecureMemoryBuilder::new()
        .config(cfg)
        .scheme(PersistScheme::triad_nvm(2))
        .build()
        .unwrap();
    let p = m.persistent_region().start();
    let p_len = m.persistent_region().len_bytes();
    for i in 0..800u64 {
        let pa = PhysAddr(p.0 + (i * 29 * 64) % p_len);
        m.write(pa, &i.to_le_bytes()).unwrap();
        if i % 4 == 0 {
            m.persist(pa).unwrap();
        }
    }
    let problems = m.validate_consistency();
    assert!(problems.is_empty(), "{problems:?}");
    m.crash();
    assert!(m.recover().unwrap().persistent_recovered);
}

#[test]
fn repeated_crashes_under_thrash_never_wedge() {
    let mut m = build(PersistScheme::triad_nvm(1));
    let p = m.persistent_region().start();
    let p_len = m.persistent_region().len_bytes();
    for round in 0..10u64 {
        for i in 0..200u64 {
            let pa = PhysAddr(p.0 + ((round * 977 + i * 31) * 64) % p_len);
            m.write(pa, &(round * 1000 + i).to_le_bytes()).unwrap();
            if i % 3 == 0 {
                m.persist(pa).unwrap();
            }
        }
        m.crash();
        assert!(
            m.recover().unwrap().persistent_recovered,
            "round {round} failed to recover"
        );
        let problems = m.validate_consistency();
        assert!(problems.is_empty(), "round {round}: {problems:?}");
    }
    assert_eq!(m.session(), 11);
}
