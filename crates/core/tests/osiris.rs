//! The Osiris-style counter-persistence relaxation (Ye et al.,
//! MICRO'18 — cited by the paper's §6 as an orthogonal technique):
//! counters are persisted every Nth update only, and stale counters
//! are reconstructed at access time by searching consecutive values
//! against the strictly persisted MACs, validated against the
//! persisted BMT level.

use triad_core::{CounterPersistence, PersistScheme, SecureMemoryBuilder, SecureMemoryError};
use triad_sim::PhysAddr;

fn build(interval: u8) -> triad_core::SecureMemory {
    SecureMemoryBuilder::new()
        .scheme(PersistScheme::triad_nvm(2))
        .counter_persistence(CounterPersistence::Osiris { interval })
        .build()
        .unwrap()
}

#[test]
fn osiris_requires_a_persisted_oracle_level() {
    let err = SecureMemoryBuilder::new()
        .scheme(PersistScheme::triad_nvm(1))
        .counter_persistence(CounterPersistence::Osiris { interval: 4 })
        .build()
        .unwrap_err();
    assert!(matches!(err, SecureMemoryError::Config(_)), "{err}");
    let err = SecureMemoryBuilder::new()
        .scheme(PersistScheme::triad_nvm(2))
        .counter_persistence(CounterPersistence::Osiris { interval: 0 })
        .build()
        .unwrap_err();
    assert!(matches!(err, SecureMemoryError::Config(_)));
}

#[test]
fn osiris_skips_counter_persists() {
    let mut m = build(4);
    let p = m.persistent_region().start();
    for i in 0..32u64 {
        m.write(p, &i.to_le_bytes()).unwrap();
        m.persist(p).unwrap();
    }
    let s = m.stats();
    assert!(
        s.osiris_counter_skips >= 20,
        "most counter persists should be skipped: {s:?}"
    );
    assert!(
        s.counter_writes_persist <= 12,
        "counter writes cut ~4x: {s:?}"
    );
}

#[test]
fn stale_counters_are_reconstructed_after_a_crash() {
    let mut m = build(4);
    let p = m.persistent_region().start();
    // Leave the counter stale: the block persists at the 4th update
    // and the remaining 3 updates are skipped (7 % 4 != 0).
    for i in 0..7u64 {
        m.write(p, &i.to_le_bytes()).unwrap();
        m.persist(p).unwrap();
    }
    let neighbour = PhysAddr(p.0 + 4096); // a *different* page
    m.write(neighbour, b"nb").unwrap();
    m.persist(neighbour).unwrap();
    m.crash();
    let report = m.recover().unwrap();
    assert!(report.persistent_recovered, "{report:?}");
    // Reading forces the counter fetch; the stale counter must be
    // rebuilt by the MAC search, transparently.
    assert_eq!(&m.read(p).unwrap()[..8], &6u64.to_le_bytes());
    assert_eq!(&m.read(neighbour).unwrap()[..2], b"nb");
    assert!(
        m.stats().osiris_recoveries >= 1,
        "the search must have run: {:?}",
        m.stats()
    );
}

#[test]
fn osiris_survives_repeated_crashes() {
    let mut m = build(3);
    let p = m.persistent_region().start();
    let mut expected = 0u64;
    for round in 0..6u64 {
        for i in 0..(round + 2) {
            expected = round * 100 + i;
            m.write(p, &expected.to_le_bytes()).unwrap();
            m.persist(p).unwrap();
        }
        m.crash();
        assert!(m.recover().unwrap().persistent_recovered, "round {round}");
        assert_eq!(
            &m.read(p).unwrap()[..8],
            &expected.to_le_bytes(),
            "round {round}"
        );
    }
}

#[test]
fn tampering_is_still_detected_under_osiris() {
    // The search must not become a rollback vector: rolling data+MAC
    // back should not produce a counter the tree accepts.
    let mut m = build(4);
    let p = m.persistent_region().start();
    let layout = m.memory_map().persistent().clone();
    m.write(p, b"version-1").unwrap();
    m.persist(p).unwrap();
    let old_data = m.nvm_image().read(p.block());
    let old_mac = m.nvm_image().read(layout.mac_block_of(p.block()));
    m.write(p, b"version-2").unwrap();
    m.persist(p).unwrap();
    m.write(p, b"version-3").unwrap();
    m.persist(p).unwrap();
    m.crash();
    m.nvm_image_mut().rollback_to(p.block(), old_data);
    m.nvm_image_mut()
        .rollback_to(layout.mac_block_of(p.block()), old_mac);
    m.recover().unwrap();
    let r = m.read(p);
    assert!(
        matches!(r, Err(SecureMemoryError::IntegrityViolation { .. })),
        "rolled-back data+MAC must not verify: {r:?}"
    );
}

#[test]
fn mixed_page_with_multiple_stale_minors_recovers() {
    // Several blocks of one page updated between counter persists:
    // the per-block MAC search must reconstruct each minor.
    let mut m = build(8);
    let p = m.persistent_region().start();
    for block in 0..6u64 {
        for i in 0..3u64 {
            let a = PhysAddr(p.0 + block * 64);
            m.write(a, &(block * 10 + i).to_le_bytes()).unwrap();
            m.persist(a).unwrap();
        }
    }
    m.crash();
    assert!(m.recover().unwrap().persistent_recovered);
    for block in 0..6u64 {
        let a = PhysAddr(p.0 + block * 64);
        assert_eq!(
            &m.read(a).unwrap()[..8],
            &(block * 10 + 2).to_le_bytes(),
            "block {block}"
        );
    }
}
