//! Batched/scalar equivalence property: replaying the same seeded
//! history of persist batches through `apply_batch` and through a
//! member-by-member `persist_block` loop must be observationally
//! identical — byte-identical NVM image (data, counters, MACs and BMT
//! nodes), identical persistent BMT root, and identical post-crash
//! recovery — under every scheme. The batch pipeline (shared pad pass,
//! prefetch planning, coalesced metadata commit) is a performance
//! transformation only.
//!
//! Four per-scheme tests × 250 default cases = 1000 seeded histories;
//! `TRIAD_PROP_CASES` rescales each test as usual.

use std::collections::BTreeMap;

use triad_core::{
    CounterPersistence, PersistScheme, SecureMemory, SecureMemoryBuilder, WriteBatch,
};
use triad_meta::layout::RegionKind;
use triad_sim::prop::{check, Config};
use triad_sim::rng::SplitMix64;
use triad_sim::{BlockAddr, PhysAddr, Time, BLOCK_BYTES};

/// One history event: a batch of persistent stores or a clean crash.
enum Event {
    Batch(Vec<(BlockAddr, [u8; BLOCK_BYTES])>),
    Crash,
}

/// Draws a history of 1–20 events. Blocks come from a 24-page window
/// so members routinely share counter blocks, MAC blocks and BMT
/// ancestors — the cases where coalescing actually merges writes.
fn gen_history(rng: &mut SplitMix64, base: PhysAddr, allow_crash: bool) -> Vec<Event> {
    let len = rng.gen_range(1..21) as usize;
    (0..len)
        .map(|_| {
            if allow_crash && rng.gen_bool(0.15) {
                Event::Crash
            } else {
                let members = rng.gen_range_inclusive(1..=8) as usize;
                Event::Batch(
                    (0..members)
                        .map(|_| {
                            let page = rng.gen_range(0..24);
                            let slot = rng.gen_range(0..4);
                            let addr = PhysAddr(base.0 + page * 4096 + slot * 64);
                            let mut data = [0u8; BLOCK_BYTES];
                            rng.fill_bytes(&mut data);
                            (addr.block(), data)
                        })
                        .collect(),
                )
            }
        })
        .collect()
}

fn build(scheme: PersistScheme, key_seed: u64) -> SecureMemory {
    SecureMemoryBuilder::new()
        .scheme(scheme)
        .counter_persistence(CounterPersistence::Strict)
        .key_seed(key_seed)
        .build()
        .unwrap()
}

fn image(mem: &SecureMemory) -> BTreeMap<u64, [u8; BLOCK_BYTES]> {
    mem.nvm_image().iter().map(|(a, b)| (a.0, *b)).collect()
}

fn check_equivalence(scheme: PersistScheme, rng: &mut SplitMix64) -> Result<(), String> {
    let key_seed = rng.next_u64();
    let mut scalar = build(scheme, key_seed);
    let mut batched = build(scheme, key_seed);
    let base = scalar.persistent_region().start();
    // WriteBack deliberately cannot recover the persistent region, so a
    // mid-history crash poisons every later persist on both sides;
    // keep its histories crash-free and let the final cycle below
    // check that both replicas poison identically.
    let allow_crash = scheme.persists_metadata();
    let history = gen_history(rng, base, allow_crash);

    let mut touched: Vec<BlockAddr> = Vec::new();
    let (mut ts, mut tb) = (Time::ZERO, Time::ZERO);
    for event in &history {
        match event {
            Event::Batch(members) => {
                for (block, data) in members {
                    ts = scalar
                        .persist_block(*block, *data, ts)
                        .map_err(|e| format!("scalar persist: {e}"))?;
                    if !touched.contains(block) {
                        touched.push(*block);
                    }
                }
                let mut batch = WriteBatch::new();
                for (block, data) in members {
                    batch.push(*block, *data);
                }
                tb = batched
                    .persist_batch(&batch, tb)
                    .map_err(|e| format!("batched persist: {e}"))?;
            }
            Event::Crash => {
                scalar.crash();
                batched.crash();
                scalar
                    .recover()
                    .map_err(|e| format!("scalar recover: {e}"))?;
                batched
                    .recover()
                    .map_err(|e| format!("batched recover: {e}"))?;
            }
        }
    }

    if image(&scalar) != image(&batched) {
        return Err("NVM images diverged after history".into());
    }
    if scalar.root(RegionKind::Persistent) != batched.root(RegionKind::Persistent) {
        return Err("persistent BMT roots diverged".into());
    }
    if scalar.stats().persists != batched.stats().persists {
        return Err(format!(
            "durability-point counts diverged: scalar {} vs batched {}",
            scalar.stats().persists,
            batched.stats().persists
        ));
    }

    // Both must also agree after one more crash/recovery cycle: the
    // staged-update replay paths converge on the same bytes.
    scalar.crash();
    batched.crash();
    let rs = scalar
        .recover()
        .map_err(|e| format!("scalar recover: {e}"))?;
    let rb = batched
        .recover()
        .map_err(|e| format!("batched recover: {e}"))?;
    if rs.persistent_recovered != rb.persistent_recovered {
        return Err("recovery reports diverged".into());
    }
    if !rs.persistent_recovered {
        // WriteBack: both replicas agree the region is unrecoverable.
        return Ok(());
    }
    for block in &touched {
        let a = scalar
            .read(block.base())
            .map_err(|e| format!("scalar post-recovery read: {e}"))?;
        let b = batched
            .read(block.base())
            .map_err(|e| format!("batched post-recovery read: {e}"))?;
        if a != b {
            return Err(format!("post-recovery contents diverged at {block:?}"));
        }
    }
    Ok(())
}

fn run(name: &'static str, scheme: PersistScheme) {
    check(name, Config::cases(250), |rng| {
        check_equivalence(scheme, rng)
    });
}

#[test]
fn batched_equals_scalar_write_back() {
    run("batched_equals_scalar_write_back", PersistScheme::WriteBack);
}

#[test]
fn batched_equals_scalar_triad1() {
    run("batched_equals_scalar_triad1", PersistScheme::triad_nvm(1));
}

#[test]
fn batched_equals_scalar_triad3() {
    run("batched_equals_scalar_triad3", PersistScheme::triad_nvm(3));
}

#[test]
fn batched_equals_scalar_strict() {
    run("batched_equals_scalar_strict", PersistScheme::Strict);
}
