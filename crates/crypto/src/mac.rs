//! Per-block message authentication codes.
//!
//! Every data block is protected by an 8-byte MAC binding the
//! *ciphertext*, the block's *address* and its *counter value* (§2.1.2:
//! with a BMT over the counters, data needs only a MAC, not tree
//! coverage). Eight MACs pack into one 64 B MAC block in memory.

use crate::ctr::Iv;
use crate::siphash::SipHash24;

/// An 8-byte MAC tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Mac64(pub u64);

impl Mac64 {
    /// The all-zero tag, used by lazy recovery (§3.3.4) as the
    /// "uninitialised" sentinel.
    pub const ZERO: Mac64 = Mac64(0);

    /// Whether this is the lazy-recovery sentinel.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Serialises little-endian.
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_le_bytes()
    }

    /// Deserialises little-endian.
    pub fn from_bytes(bytes: [u8; 8]) -> Self {
        Mac64(u64::from_le_bytes(bytes))
    }
}

impl std::fmt::Display for Mac64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mac:{:016x}", self.0)
    }
}

/// The keyed MAC engine of the secure memory controller.
#[derive(Debug, Clone, Copy)]
pub struct MacEngine {
    prf: SipHash24,
}

impl MacEngine {
    /// Creates an engine from a 128-bit MAC key.
    pub fn new(key: [u8; 16]) -> Self {
        MacEngine {
            prf: SipHash24::new(key),
        }
    }

    /// MAC over one data block: `H(k, block_addr ‖ ciphertext ‖ iv)`.
    ///
    /// Binding the IV (hence the counter) means rolling data *and* MAC
    /// back together is still detected unless the counter also rolls
    /// back — which the BMT over counters prevents.
    pub fn data_mac(&self, block_addr: u64, ciphertext: &[u8; 64], iv: &Iv) -> Mac64 {
        let mut buf = [0u8; 8 + 64 + 8 + 8];
        buf[..8].copy_from_slice(&block_addr.to_le_bytes());
        buf[8..72].copy_from_slice(ciphertext);
        buf[72..80].copy_from_slice(&iv.major.to_le_bytes());
        buf[80] = iv.minor;
        buf[81..85].copy_from_slice(&iv.session.to_le_bytes());
        Mac64(self.prf.hash(&buf))
    }

    /// 64 B → 8 B hash of a Merkle-tree child node (or counter block),
    /// bound to the child's metadata address to prevent relocation.
    pub fn node_mac(&self, node_addr: u64, node: &[u8; 64]) -> Mac64 {
        let mut buf = [0u8; 8 + 64];
        buf[..8].copy_from_slice(&node_addr.to_le_bytes());
        buf[8..].copy_from_slice(node);
        Mac64(self.prf.hash(&buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> MacEngine {
        MacEngine::new([3u8; 16])
    }

    #[test]
    fn deterministic() {
        let iv = Iv::new(1, 2, 3, 4, 0);
        let data = [7u8; 64];
        assert_eq!(
            engine().data_mac(0x40, &data, &iv),
            engine().data_mac(0x40, &data, &iv)
        );
    }

    #[test]
    fn detects_data_tampering() {
        let iv = Iv::new(1, 2, 3, 4, 0);
        let a = [7u8; 64];
        let mut b = a;
        b[13] ^= 0x80;
        assert_ne!(
            engine().data_mac(0x40, &a, &iv),
            engine().data_mac(0x40, &b, &iv)
        );
    }

    #[test]
    fn detects_relocation() {
        let iv = Iv::new(1, 2, 3, 4, 0);
        let data = [7u8; 64];
        assert_ne!(
            engine().data_mac(0x40, &data, &iv),
            engine().data_mac(0x80, &data, &iv)
        );
    }

    #[test]
    fn detects_counter_rollback() {
        let data = [7u8; 64];
        let new = Iv::new(1, 2, 3, 5, 0);
        let old = Iv::new(1, 2, 3, 4, 0);
        assert_ne!(
            engine().data_mac(0x40, &data, &new),
            engine().data_mac(0x40, &data, &old)
        );
    }

    #[test]
    fn node_mac_binds_address() {
        let n = [9u8; 64];
        assert_ne!(engine().node_mac(0, &n), engine().node_mac(64, &n));
    }

    #[test]
    fn mac64_bytes_round_trip() {
        let m = Mac64(0x0123_4567_89AB_CDEF);
        assert_eq!(Mac64::from_bytes(m.to_bytes()), m);
        assert!(Mac64::ZERO.is_zero());
        assert!(!m.is_zero());
        assert_eq!(m.to_string(), "mac:0123456789abcdef");
    }

    #[test]
    fn different_keys_differ() {
        let iv = Iv::default();
        let data = [0u8; 64];
        let a = MacEngine::new([1; 16]).data_mac(0, &data, &iv);
        let b = MacEngine::new([2; 16]).data_mac(0, &data, &iv);
        assert_ne!(a, b);
    }
}
