//! Encryption-counter block formats.
//!
//! The paper assumes the *split-counter* organisation of Yan et al.
//! (MICRO'06): one 64 B counter block covers a 4 KiB page and packs a
//! shared 64-bit **major** counter plus 64 per-block 7-bit **minor**
//! counters (8 B + 56 B = 64 B). When a minor counter overflows, the
//! major counter is incremented, every minor counter resets to zero and
//! the whole page must be re-encrypted.
//!
//! A monolithic per-block 64-bit counter is provided for comparison
//! (it is what SGX-style designs use, at 8× the space).

use std::fmt;

/// Number of minor counters per split-counter block (one per 64 B data
/// block of a 4 KiB page).
pub const MINORS_PER_BLOCK: usize = 64;

/// Maximum value of a 7-bit minor counter.
pub const MINOR_MAX: u8 = 127;

/// Outcome of incrementing a counter for one data-block write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncrementOutcome {
    /// The minor counter advanced; only this data block re-encrypts.
    Minor,
    /// The minor counter overflowed: the major counter advanced, all
    /// minors reset, and the **whole page** must be re-encrypted.
    MajorOverflow,
}

/// A 64-byte split-counter block: 64-bit major + 64 × 7-bit minors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitCounterBlock {
    major: u64,
    /// Each entry is `0..=127`; stored unpacked for speed, packed to
    /// 7 bits in the serialised form.
    minors: [u8; MINORS_PER_BLOCK],
}

impl Default for SplitCounterBlock {
    fn default() -> Self {
        SplitCounterBlock {
            major: 0,
            minors: [0; MINORS_PER_BLOCK],
        }
    }
}

impl SplitCounterBlock {
    /// A fresh counter block with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared major counter.
    pub fn major(&self) -> u64 {
        self.major
    }

    /// The minor counter for data block `index` of the page.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`.
    pub fn minor(&self, index: usize) -> u8 {
        self.minors[index]
    }

    /// Increments the counter for data block `index`, returning whether
    /// the increment stayed minor or overflowed into the major counter.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`.
    pub fn increment(&mut self, index: usize) -> IncrementOutcome {
        if self.minors[index] == MINOR_MAX {
            self.major += 1;
            self.minors = [0; MINORS_PER_BLOCK];
            // The written block consumes the first value of the new
            // epoch so two consecutive writes never share (major, minor).
            self.minors[index] = 1;
            IncrementOutcome::MajorOverflow
        } else {
            self.minors[index] += 1;
            IncrementOutcome::Minor
        }
    }

    /// Serialises into the 64-byte memory layout: major counter in the
    /// first 8 bytes (little-endian), then the 64 minors packed 7 bits
    /// each into the remaining 56 bytes.
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..8].copy_from_slice(&self.major.to_le_bytes());
        let mut bit = 0usize;
        for &m in &self.minors {
            let byte = 8 + bit / 8;
            let off = bit % 8;
            out[byte] |= m << off;
            if off > 1 {
                // 7 bits spill into the next byte when offset > 1.
                out[byte + 1] |= m >> (8 - off);
            }
            bit += 7;
        }
        out
    }

    /// Deserialises from the 64-byte memory layout.
    pub fn from_bytes(bytes: &[u8; 64]) -> Self {
        let major = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
        let mut minors = [0u8; MINORS_PER_BLOCK];
        let mut bit = 0usize;
        for m in &mut minors {
            let byte = 8 + bit / 8;
            let off = bit % 8;
            let mut v = (bytes[byte] >> off) as u16;
            if off > 1 {
                v |= (bytes[byte + 1] as u16) << (8 - off);
            }
            *m = (v & 0x7f) as u8;
            bit += 7;
        }
        SplitCounterBlock { major, minors }
    }
}

impl fmt::Display for SplitCounterBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "split(major={}, minors=[", self.major)?;
        for (i, m) in self.minors.iter().enumerate().take(4) {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, ",…])")
    }
}

/// A monolithic 64-bit per-block counter (the SGX-style alternative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct MonolithicCounter(pub u64);

impl MonolithicCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments, panicking on the (practically unreachable) overflow
    /// that would force whole-memory re-encryption.
    pub fn increment(&mut self) {
        self.0 = self
            .0
            .checked_add(1)
            .expect("64-bit monolithic counter overflow: re-key required");
    }
}

impl fmt::Display for MonolithicCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mono({})", self.0)
    }
}

/// A 64-byte block of eight monolithic 64-bit counters (SGX-style):
/// each covers one data block, so one counter block spans 512 B of
/// data instead of a split block's 4 KiB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MonolithicCounterBlock {
    counters: [u64; 8],
}

impl MonolithicCounterBlock {
    /// A fresh block with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter for data slot `index` (`0..8`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`.
    pub fn counter(&self, index: usize) -> u64 {
        self.counters[index]
    }

    /// Increments the counter for slot `index`. Monolithic counters
    /// never trigger page re-encryption (a 64-bit counter does not
    /// overflow in the life of the system).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 8`, or on the astronomically unreachable
    /// 64-bit overflow.
    pub fn increment(&mut self, index: usize) -> IncrementOutcome {
        self.counters[index] = self.counters[index]
            .checked_add(1)
            .expect("64-bit counter overflow: re-key required");
        IncrementOutcome::Minor
    }

    /// Serialises to the 64-byte memory layout (little-endian).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        for (i, c) in self.counters.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&c.to_le_bytes());
        }
        out
    }

    /// Deserialises from the 64-byte memory layout.
    pub fn from_bytes(bytes: &[u8; 64]) -> Self {
        let mut counters = [0u64; 8];
        for (i, c) in counters.iter_mut().enumerate() {
            *c = u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().expect("8 bytes"));
        }
        MonolithicCounterBlock { counters }
    }
}

impl fmt::Display for MonolithicCounterBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mono[{},{},…]", self.counters[0], self.counters[1])
    }
}

/// A counter block in either organisation — what the secure engine's
/// counter cache actually holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnyCounterBlock {
    /// Split organisation (64 data blocks per counter block).
    Split(SplitCounterBlock),
    /// Monolithic organisation (8 data blocks per counter block).
    Mono(MonolithicCounterBlock),
}

impl AnyCounterBlock {
    /// A fresh all-zero block of the given organisation
    /// (`true` = split).
    pub fn fresh(split: bool) -> Self {
        if split {
            AnyCounterBlock::Split(SplitCounterBlock::new())
        } else {
            AnyCounterBlock::Mono(MonolithicCounterBlock::new())
        }
    }

    /// Number of data blocks one counter block covers.
    pub fn coverage(&self) -> usize {
        match self {
            AnyCounterBlock::Split(_) => MINORS_PER_BLOCK,
            AnyCounterBlock::Mono(_) => 8,
        }
    }

    /// The `(major, minor)` IV pair for data slot `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the coverage.
    pub fn pair(&self, index: usize) -> CounterBlock {
        match self {
            AnyCounterBlock::Split(b) => CounterBlock::of_split(b, index),
            AnyCounterBlock::Mono(b) => CounterBlock {
                major: b.counter(index),
                minor: 0,
            },
        }
    }

    /// Increments the counter for slot `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the coverage.
    pub fn increment(&mut self, index: usize) -> IncrementOutcome {
        match self {
            AnyCounterBlock::Split(b) => b.increment(index),
            AnyCounterBlock::Mono(b) => b.increment(index),
        }
    }

    /// Serialises to the 64-byte memory layout.
    pub fn to_bytes(&self) -> [u8; 64] {
        match self {
            AnyCounterBlock::Split(b) => b.to_bytes(),
            AnyCounterBlock::Mono(b) => b.to_bytes(),
        }
    }

    /// Deserialises a block of the given organisation.
    pub fn from_bytes(split: bool, bytes: &[u8; 64]) -> Self {
        if split {
            AnyCounterBlock::Split(SplitCounterBlock::from_bytes(bytes))
        } else {
            AnyCounterBlock::Mono(MonolithicCounterBlock::from_bytes(bytes))
        }
    }
}

/// Either counter organisation, as seen by the encryption engine: the
/// pair that parameterises the IV for one data block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterBlock {
    /// Major (or whole, for monolithic) counter value.
    pub major: u64,
    /// Minor counter value (zero for monolithic).
    pub minor: u8,
}

impl CounterBlock {
    /// The (major, minor) pair for block `index` of a split block.
    pub fn of_split(block: &SplitCounterBlock, index: usize) -> Self {
        CounterBlock {
            major: block.major(),
            minor: block.minor(index),
        }
    }

    /// The pair for a monolithic counter.
    pub fn of_monolithic(counter: MonolithicCounter) -> Self {
        CounterBlock {
            major: counter.0,
            minor: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_block_is_zero() {
        let b = SplitCounterBlock::new();
        assert_eq!(b.major(), 0);
        assert!((0..64).all(|i| b.minor(i) == 0));
    }

    #[test]
    fn minor_increment() {
        let mut b = SplitCounterBlock::new();
        assert_eq!(b.increment(3), IncrementOutcome::Minor);
        assert_eq!(b.minor(3), 1);
        assert_eq!(b.minor(2), 0);
        assert_eq!(b.major(), 0);
    }

    #[test]
    fn overflow_resets_page() {
        let mut b = SplitCounterBlock::new();
        for _ in 0..MINOR_MAX {
            b.increment(5);
        }
        b.increment(9); // some other block's state must also reset
        assert_eq!(b.minor(5), MINOR_MAX);
        assert_eq!(b.increment(5), IncrementOutcome::MajorOverflow);
        assert_eq!(b.major(), 1);
        assert_eq!(b.minor(5), 1, "written block consumes first new value");
        assert_eq!(b.minor(9), 0, "other minors reset");
    }

    #[test]
    fn no_counter_pair_reuse_across_overflow() {
        // The fundamental security property: consecutive writes to one
        // block never produce the same (major, minor) pair.
        let mut b = SplitCounterBlock::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..400 {
            b.increment(0);
            let pair = (b.major(), b.minor(0));
            assert!(seen.insert(pair), "counter pair {pair:?} reused");
        }
    }

    #[test]
    fn minor_at_0x7f_survives_the_packed_boundary_in_every_slot() {
        // Regression pin for the 7-bit unpack mask (`v & 0x7f`): a minor
        // sitting exactly at MINOR_MAX must round-trip unchanged through
        // the packed layout for every slot alignment (the 7-bit fields
        // straddle byte boundaries at 6 of the 8 phases).
        for slot in 0..MINORS_PER_BLOCK {
            let mut b = SplitCounterBlock::new();
            for _ in 0..MINOR_MAX {
                b.increment(slot);
            }
            assert_eq!(b.minor(slot), MINOR_MAX);
            let back = SplitCounterBlock::from_bytes(&b.to_bytes());
            assert_eq!(back.minor(slot), MINOR_MAX, "slot {slot}");
            assert_eq!(back, b, "slot {slot}");
        }
    }

    #[test]
    fn overflow_across_the_serialisation_boundary_never_reuses_a_pair() {
        // The dangerous path: a counter block at the 0x7f boundary is
        // written to NVM, read back, and then incremented. The overflow
        // must still bump the major and re-issue minor=1 — a silent
        // (major, minor) reuse here would reuse a one-time pad.
        let mut b = SplitCounterBlock::new();
        for _ in 0..MINOR_MAX {
            b.increment(7);
        }
        let pre = (b.major(), b.minor(7));
        assert_eq!(pre, (0, MINOR_MAX));
        let mut reloaded = SplitCounterBlock::from_bytes(&b.to_bytes());
        assert_eq!(reloaded, b, "boundary state must survive NVM round-trip");
        assert_eq!(reloaded.increment(7), IncrementOutcome::MajorOverflow);
        assert_eq!((reloaded.major(), reloaded.minor(7)), (1, 1));
        // And the post-overflow state round-trips too, so a crash right
        // after the page re-encrypt cannot resurrect the old epoch.
        let mut back = SplitCounterBlock::from_bytes(&reloaded.to_bytes());
        assert_eq!(back, reloaded);
        assert_eq!(back.increment(7), IncrementOutcome::Minor);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let mut b = SplitCounterBlock::new();
        for i in 0..64 {
            for _ in 0..(i % 11) {
                b.increment(i);
            }
        }
        b.major = 0xDEAD_BEEF_CAFE_F00D;
        let bytes = b.to_bytes();
        assert_eq!(SplitCounterBlock::from_bytes(&bytes), b);
    }

    #[test]
    fn packed_layout_is_exactly_64_bytes_and_dense() {
        let mut b = SplitCounterBlock::new();
        b.minors = [MINOR_MAX; 64];
        b.major = u64::MAX;
        let bytes = b.to_bytes();
        // All 8 + 56 bytes carry payload when everything is maxed.
        assert!(bytes.iter().all(|&x| x == 0xFF), "{bytes:?}");
        assert_eq!(SplitCounterBlock::from_bytes(&bytes), b);
    }

    #[test]
    fn display_forms() {
        let b = SplitCounterBlock::new();
        assert!(b.to_string().starts_with("split(major=0"));
        assert_eq!(MonolithicCounter(7).to_string(), "mono(7)");
    }

    #[test]
    fn monolithic_block_round_trip_and_coverage() {
        let mut b = MonolithicCounterBlock::new();
        assert_eq!(b.increment(3), IncrementOutcome::Minor);
        b.increment(3);
        b.increment(7);
        assert_eq!(b.counter(3), 2);
        assert_eq!(b.counter(7), 1);
        assert_eq!(MonolithicCounterBlock::from_bytes(&b.to_bytes()), b);
        assert!(b.to_string().starts_with("mono["));
    }

    #[test]
    fn any_counter_block_unifies_both_modes() {
        let mut split = AnyCounterBlock::fresh(true);
        let mut mono = AnyCounterBlock::fresh(false);
        assert_eq!(split.coverage(), 64);
        assert_eq!(mono.coverage(), 8);
        split.increment(5);
        mono.increment(5);
        assert_eq!(split.pair(5), CounterBlock { major: 0, minor: 1 });
        assert_eq!(mono.pair(5), CounterBlock { major: 1, minor: 0 });
        for (b, is_split) in [(split, true), (mono, false)] {
            let bytes = b.to_bytes();
            assert_eq!(AnyCounterBlock::from_bytes(is_split, &bytes), b);
        }
    }

    #[test]
    fn monolithic_never_overflows_a_page() {
        let mut b = AnyCounterBlock::fresh(false);
        for _ in 0..1000 {
            assert_eq!(b.increment(0), IncrementOutcome::Minor);
        }
        assert_eq!(
            b.pair(0),
            CounterBlock {
                major: 1000,
                minor: 0
            }
        );
    }

    #[test]
    fn monolithic_increment() {
        let mut c = MonolithicCounter::new();
        c.increment();
        assert_eq!(c, MonolithicCounter(1));
        assert_eq!(
            CounterBlock::of_monolithic(c),
            CounterBlock { major: 1, minor: 0 }
        );
    }

    #[test]
    fn counter_pair_extraction() {
        let mut b = SplitCounterBlock::new();
        b.increment(2);
        b.increment(2);
        let pair = CounterBlock::of_split(&b, 2);
        assert_eq!(pair, CounterBlock { major: 0, minor: 2 });
    }
}
