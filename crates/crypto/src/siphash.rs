//! SipHash-2-4 (Aumasson & Bernstein, 2012): a fast keyed 64-bit PRF.
//!
//! Used as the 64 B → 8 B hash for Bonsai-Merkle-tree nodes and as the
//! per-block data MAC. A 64-bit tag matches the paper's metadata layout
//! (eight 8 B MACs per 64 B tree node).

/// A SipHash-2-4 instance keyed with 128 bits.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SipHash24 {
    k0: u64,
    k1: u64,
}

impl std::fmt::Debug for SipHash24 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.debug_struct("SipHash24").finish_non_exhaustive()
    }
}

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

impl SipHash24 {
    /// Creates an instance from a 16-byte key (little-endian halves, as
    /// in the reference implementation).
    pub fn new(key: [u8; 16]) -> Self {
        SipHash24 {
            k0: u64::from_le_bytes(key[0..8].try_into().expect("8 bytes")),
            k1: u64::from_le_bytes(key[8..16].try_into().expect("8 bytes")),
        }
    }

    /// Creates an instance directly from two 64-bit key halves.
    pub const fn from_halves(k0: u64, k1: u64) -> Self {
        SipHash24 { k0, k1 }
    }

    /// Hashes `data`, producing the 64-bit tag.
    pub fn hash(&self, data: &[u8]) -> u64 {
        let mut v = [
            self.k0 ^ 0x736f_6d65_7073_6575,
            self.k1 ^ 0x646f_7261_6e64_6f6d,
            self.k0 ^ 0x6c79_6765_6e65_7261,
            self.k1 ^ 0x7465_6462_7974_6573,
        ];
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let m = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            v[3] ^= m;
            sipround(&mut v);
            sipround(&mut v);
            v[0] ^= m;
        }
        // Final block: remaining bytes plus the length in the top byte.
        let rem = chunks.remainder();
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        last[7] = data.len() as u8;
        let m = u64::from_le_bytes(last);
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
        v[2] ^= 0xff;
        for _ in 0..4 {
            sipround(&mut v);
        }
        v[0] ^ v[1] ^ v[2] ^ v[3]
    }

    /// Hashes a sequence of 64-bit words (little-endian), a convenience
    /// for hashing structured metadata without an allocation.
    pub fn hash_words(&self, words: &[u64]) -> u64 {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.hash(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference key from the SipHash paper: bytes 00..0f.
    fn reference() -> SipHash24 {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        SipHash24::new(key)
    }

    #[test]
    fn reference_vector_empty() {
        // First entry of vectors_sip64 in the reference implementation.
        assert_eq!(reference().hash(&[]), 0x726f_db47_dd0e_0e31);
    }

    #[test]
    fn reference_vector_one_byte() {
        assert_eq!(reference().hash(&[0]), 0x74f8_39c5_93dc_67fd);
    }

    #[test]
    fn reference_vector_eight_bytes() {
        let msg: Vec<u8> = (0..8).collect();
        assert_eq!(reference().hash(&msg), 0x93f5_f579_9a93_2462);
    }

    #[test]
    fn reference_vector_fifteen_bytes() {
        let msg: Vec<u8> = (0..15).collect();
        assert_eq!(reference().hash(&msg), 0xa129_ca61_49be_45e5);
    }

    #[test]
    fn key_separation() {
        let a = SipHash24::from_halves(1, 2);
        let b = SipHash24::from_halves(1, 3);
        assert_ne!(a.hash(b"hello"), b.hash(b"hello"));
    }

    #[test]
    fn message_sensitivity() {
        let h = reference();
        let m1 = [0u8; 64];
        let mut m2 = m1;
        m2[63] ^= 1;
        assert_ne!(h.hash(&m1), h.hash(&m2));
    }

    #[test]
    fn hash_words_matches_bytes() {
        let h = reference();
        let words = [0x0102_0304_0506_0708u64, 42];
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(h.hash_words(&words), h.hash(&bytes));
    }

    #[test]
    fn debug_hides_key() {
        let repr = format!("{:?}", SipHash24::from_halves(0xDEAD, 0xBEEF));
        assert!(!repr.contains("DEAD") && !repr.contains("dead"));
    }
}
