//! Cryptographic substrate for the Triad-NVM secure memory controller.
//!
//! Everything here is implemented from scratch so the simulator is
//! *functionally* secure: tampering with simulated NVM contents really
//! does produce MAC/Merkle-tree mismatches, which is what the crash,
//! recovery and resilience tests rely on.
//!
//! * [`aes`] — AES-128 block cipher (FIPS-197), used to generate
//!   counter-mode one-time pads.
//! * [`siphash`] — SipHash-2-4 keyed 64-bit PRF, used for per-block
//!   data MACs and for the 64 B → 8 B Bonsai-Merkle-tree node hashes.
//! * [`counter`] — the split-counter block format of Yan et al.
//!   (64-bit major + 64 × 7-bit minor counters in one 64 B block) and a
//!   monolithic-counter alternative for comparison.
//! * [`ctr`] — initialisation-vector construction (including the
//!   *session counter* of §3.3.2) and 64-byte one-time-pad
//!   encryption/decryption.
//! * [`mac`] — data-block MAC binding ciphertext, address and counter.
//!
//! # Example: encrypt and authenticate one block
//!
//! ```rust
//! use triad_crypto::{aes::Aes128, ctr::{Iv, encrypt_block}, mac::MacEngine};
//!
//! let cipher = Aes128::new(&[7u8; 16]);
//! let mac = MacEngine::new([1u8; 16]);
//! let iv = Iv::new(/*page*/ 3, /*offset*/ 0, /*major*/ 1, /*minor*/ 1, /*session*/ 0);
//! let plain = [0xABu8; 64];
//! let ciphertext = encrypt_block(&cipher, &iv, &plain);
//! let tag = mac.data_mac(0x40, &ciphertext, &iv);
//! assert_ne!(ciphertext, plain);
//! assert_eq!(encrypt_block(&cipher, &iv, &ciphertext), plain); // XOR pad is an involution
//! let _ = tag;
//! ```

#![warn(missing_docs)]

pub mod aes;
pub mod counter;
pub mod ctr;
pub mod mac;
pub mod siphash;

pub use aes::Aes128;
pub use counter::{
    AnyCounterBlock, CounterBlock, MonolithicCounter, MonolithicCounterBlock, SplitCounterBlock,
};
pub use ctr::{decrypt_block, encrypt_block, pad_batch, Iv};
pub use mac::{Mac64, MacEngine};
pub use siphash::SipHash24;
