//! Counter-mode encryption of 64-byte memory blocks.
//!
//! The initialisation vector binds the pad to the block's *location*
//! (page id + page offset), its *version* (major + minor counter) and —
//! following §3.3.2 of the paper — a **session counter** that is 0 for
//! persistent data and incremented at every boot for non-persistent
//! data, so stale non-persistent counters can never cause pad reuse
//! across boot episodes even without strict counter persistence.

use crate::aes::Aes128;

/// The initialisation vector for one 64-byte block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Iv {
    /// 4 KiB page id of the block.
    pub page: u64,
    /// Block index within its page (`0..64`).
    pub offset: u8,
    /// Major counter (shared per page).
    pub major: u64,
    /// Minor counter (per block, 7-bit).
    pub minor: u8,
    /// Session counter (§3.3.2): 0 for persistent data; bumped at each
    /// boot for non-persistent data.
    pub session: u32,
}

impl Iv {
    /// Creates an IV from its components.
    pub fn new(page: u64, offset: u8, major: u64, minor: u8, session: u32) -> Self {
        Iv {
            page,
            offset,
            major,
            minor,
            session,
        }
    }

    /// Serialises to the 16-byte AES input for pad word `word`
    /// (`0..4`; a 64 B block needs four 16 B pad words).
    fn to_block(self, word: u8) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&self.page.to_le_bytes());
        // Major counter is 64-bit; fold its high half into the low half
        // of the remaining space: bytes 8..14 carry the low 48 bits and
        // byte 14 xors in a fold of the high bits. In practice major
        // counters stay tiny; the fold keeps the mapping injective for
        // the realistic range (< 2^48).
        let major = self.major.to_le_bytes();
        b[8..14].copy_from_slice(&major[..6]);
        b[14] = self.minor | ((self.offset & 0x1) << 7);
        b[15] = (self.offset >> 1) | (word << 5);
        // Session occupies the top of the page field's unused bits: real
        // page ids are < 2^52 for any buildable memory.
        let s = self.session.to_le_bytes();
        b[6] ^= s[0];
        b[7] ^= s[1];
        b[13] ^= s[2] ^ s[3] ^ major[6] ^ major[7];
        b
    }
}

/// Generates the 64-byte one-time pad for `iv`.
pub fn pad(cipher: &Aes128, iv: &Iv) -> [u8; 64] {
    let mut out = [0u8; 64];
    for word in 0..4u8 {
        let enc = cipher.encrypt_block(iv.to_block(word));
        out[16 * word as usize..16 * (word as usize + 1)].copy_from_slice(&enc);
    }
    out
}

/// Generates the one-time pads for a whole batch of IVs under one
/// shared key schedule.
///
/// All `4 × ivs.len()` AES inputs are serialised in a single pass and
/// then encrypted back-to-back, which is how a hardware write-batch
/// pipeline would drive the AES unit: the key schedule is expanded once
/// and the counter blocks stream through it. The output is
/// bit-identical to mapping [`pad`] over `ivs`.
pub fn pad_batch(cipher: &Aes128, ivs: &[Iv]) -> Vec<[u8; 64]> {
    // Pass 1: serialise every 16 B counter block for the whole batch.
    let mut inputs = Vec::with_capacity(ivs.len() * 4);
    for iv in ivs {
        for word in 0..4u8 {
            inputs.push(iv.to_block(word));
        }
    }
    // Pass 2: stream the serialised blocks through the shared schedule.
    let mut out = Vec::with_capacity(ivs.len());
    for chunk in inputs.chunks_exact(4) {
        let mut p = [0u8; 64];
        for (word, input) in chunk.iter().enumerate() {
            let enc = cipher.encrypt_block(*input);
            p[16 * word..16 * (word + 1)].copy_from_slice(&enc);
        }
        out.push(p);
    }
    out
}

/// Encrypts a 64-byte block with the pad derived from `iv`.
///
/// Counter-mode encryption is a XOR with the pad, so this function is
/// an involution: applying it to ciphertext with the same IV decrypts.
pub fn encrypt_block(cipher: &Aes128, iv: &Iv, data: &[u8; 64]) -> [u8; 64] {
    let p = pad(cipher, iv);
    let mut out = [0u8; 64];
    for i in 0..64 {
        out[i] = data[i] ^ p[i];
    }
    out
}

/// Decrypts a 64-byte block (alias of [`encrypt_block`], provided for
/// call-site readability).
pub fn decrypt_block(cipher: &Aes128, iv: &Iv, data: &[u8; 64]) -> [u8; 64] {
    encrypt_block(cipher, iv, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher() -> Aes128 {
        Aes128::new(&[0x42; 16])
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let iv = Iv::new(10, 3, 7, 2, 0);
        let data = [0x5Au8; 64];
        let ct = encrypt_block(&cipher(), &iv, &data);
        assert_ne!(ct, data);
        assert_eq!(decrypt_block(&cipher(), &iv, &ct), data);
    }

    #[test]
    fn different_counters_give_different_pads() {
        let c = cipher();
        let a = pad(&c, &Iv::new(1, 0, 0, 1, 0));
        let b = pad(&c, &Iv::new(1, 0, 0, 2, 0));
        assert_ne!(a, b);
    }

    #[test]
    fn different_locations_give_different_pads() {
        let c = cipher();
        assert_ne!(
            pad(&c, &Iv::new(1, 0, 0, 1, 0)),
            pad(&c, &Iv::new(2, 0, 0, 1, 0))
        );
        assert_ne!(
            pad(&c, &Iv::new(1, 0, 0, 1, 0)),
            pad(&c, &Iv::new(1, 1, 0, 1, 0))
        );
    }

    #[test]
    fn session_counter_changes_pad() {
        // §3.3.2: bumping the session at reboot prevents cross-boot pad
        // reuse for non-persistent data with stale counters.
        let c = cipher();
        assert_ne!(
            pad(&c, &Iv::new(1, 0, 0, 1, 0)),
            pad(&c, &Iv::new(1, 0, 0, 1, 1))
        );
    }

    #[test]
    fn major_counter_changes_pad() {
        let c = cipher();
        assert_ne!(
            pad(&c, &Iv::new(1, 0, 0, 1, 0)),
            pad(&c, &Iv::new(1, 0, 1, 1, 0))
        );
    }

    #[test]
    fn pad_words_are_distinct() {
        let p = pad(&cipher(), &Iv::new(0, 0, 0, 0, 0));
        let words: Vec<&[u8]> = p.chunks(16).collect();
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(words[i], words[j]);
            }
        }
    }

    #[test]
    fn pad_batch_matches_scalar_pads() {
        let c = cipher();
        let ivs: Vec<Iv> = (0..17u64)
            .map(|i| Iv::new(i / 3, (i % 64) as u8, i % 5, (i % 127) as u8, 0))
            .collect();
        let batched = pad_batch(&c, &ivs);
        let scalar: Vec<[u8; 64]> = ivs.iter().map(|iv| pad(&c, iv)).collect();
        assert_eq!(batched, scalar);
    }

    #[test]
    fn pad_batch_of_nothing_is_empty() {
        assert!(pad_batch(&cipher(), &[]).is_empty());
    }

    #[test]
    fn wrong_key_fails_to_decrypt() {
        let iv = Iv::new(10, 3, 7, 2, 0);
        let data = [1u8; 64];
        let ct = encrypt_block(&cipher(), &iv, &data);
        let other = Aes128::new(&[0x43; 16]);
        assert_ne!(decrypt_block(&other, &iv, &ct), data);
    }

    #[test]
    fn iv_block_injective_over_offsets() {
        let iv0 = Iv::new(0, 0, 0, 0, 0);
        let mut seen = std::collections::HashSet::new();
        for offset in 0..64u8 {
            let iv = Iv { offset, ..iv0 };
            assert!(seen.insert(iv.to_block(0)), "offset {offset} collides");
        }
    }
}
