//! Durability tiers: what "the store accepted my write" promises.
//!
//! The engine below offers a spectrum of persistence schemes
//! (TriadNVM-N relaxes integrity-metadata persistence against bounded
//! recovery work; Strict persists everything inline). This module
//! names the *application-visible* contracts a serving layer can build
//! from them, so one deployment can serve zero-loss and bounded-loss
//! tenants from the same engine. The guarantees of each tier are
//! frozen as numbered invariants in `docs/durability-contract.md`;
//! every invariant there is enforced by a crash-injection test or a
//! triad-lint rule.

use triad_core::PersistScheme;

/// The durability contract a tenant's mutations are admitted under.
///
/// Ordered weakest to strongest. The variants map onto the paper's
/// persistence spectrum (see [`DurabilityMode::recommended_scheme`]):
/// `InMemory` corresponds to running the engine as a write-back cache
/// with no application log, `Buffered` to the TriadNVM relaxation
/// (bounded loss, bounded recovery), `Strict` to strict persistence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurabilityMode {
    /// No durability until an explicit barrier. Mutations live in a
    /// volatile overlay; a crash rolls the tenant back to its last
    /// completed Strict barrier (invariant D5). Loss is unbounded
    /// between barriers — this is the cache/session-state tier.
    InMemory,
    /// Bounded loss: mutations buffer in DRAM and flush as one
    /// group commit when either `max_loss` mutations have
    /// accumulated or `flush_interval` simulated nanoseconds have
    /// passed since the oldest unbuffered mutation (the group-fsync
    /// analogue). A crash loses at most `max_loss` admitted mutations
    /// (invariant D3).
    Buffered {
        /// Nanoseconds of simulated time after which a non-empty
        /// buffer is flushed even if short of `max_loss`.
        flush_interval: u64,
        /// The contractual ceiling on mutations a crash may lose.
        /// The buffer flushes strictly before exceeding it.
        max_loss: u64,
    },
    /// Full durability: when `submit` returns `Ok`, every admitted
    /// mutation has a persisted commit marker and survives any crash
    /// (invariant D1). This is the tier every pre-existing caller was
    /// implicitly using.
    Strict,
}

impl Default for DurabilityMode {
    /// Defaults to [`DurabilityMode::Strict`] — the contract every
    /// caller had before tiers existed.
    fn default() -> Self {
        DurabilityMode::Strict
    }
}

impl DurabilityMode {
    /// A `Buffered` mode with the defaults used across tests and
    /// benches: flush at 8 buffered mutations or 1 ms of simulated
    /// time, whichever comes first.
    pub fn buffered_default() -> Self {
        DurabilityMode::Buffered {
            flush_interval: 1_000_000,
            max_loss: 8,
        }
    }

    /// The tier name recovery reports use (`"in-memory"`,
    /// `"buffered"`, `"strict"`). Stable: `docs/durability-contract.md`
    /// and the report assertions key on these strings.
    pub fn tier_name(self) -> &'static str {
        match self {
            DurabilityMode::InMemory => "in-memory",
            DurabilityMode::Buffered { .. } => "buffered",
            DurabilityMode::Strict => "strict",
        }
    }

    /// The contractual ceiling on mutations a crash may lose:
    /// `Some(0)` for Strict, `Some(max_loss)` for Buffered, `None`
    /// (unbounded until the next barrier) for InMemory.
    pub fn loss_bound(self) -> Option<u64> {
        match self {
            DurabilityMode::InMemory => None,
            DurabilityMode::Buffered { max_loss, .. } => Some(max_loss),
            DurabilityMode::Strict => Some(0),
        }
    }

    /// Whether mutations admitted under this mode reach the redo log
    /// without an explicit barrier.
    pub fn is_durable_tier(self) -> bool {
        !matches!(self, DurabilityMode::InMemory)
    }

    /// The engine persistence scheme this tier pairs with naturally —
    /// the paper mapping, advisory only (shards in one service share
    /// one engine scheme regardless of tenant mix):
    ///
    /// * `InMemory` → `WriteBack` (nothing to persist inline),
    /// * `Buffered` → `TriadNVM-2` (bounded recovery work matches the
    ///   bounded loss window),
    /// * `Strict` → `Strict`.
    pub fn recommended_scheme(self) -> PersistScheme {
        match self {
            DurabilityMode::InMemory => PersistScheme::WriteBack,
            DurabilityMode::Buffered { .. } => PersistScheme::triad_nvm(2),
            DurabilityMode::Strict => PersistScheme::Strict,
        }
    }

    /// `true` when `self` promises no more than `other` does — the
    /// partial order used to compute the *weakest* tier that admitted
    /// a mutation since the last recovery, which is what a
    /// `DurabilityRecovery` report states.
    pub fn weaker_or_equal(self, other: DurabilityMode) -> bool {
        self.rank() <= other.rank()
    }

    fn rank(self) -> u8 {
        match self {
            DurabilityMode::InMemory => 0,
            DurabilityMode::Buffered { .. } => 1,
            DurabilityMode::Strict => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_strict() {
        assert_eq!(DurabilityMode::default(), DurabilityMode::Strict);
    }

    #[test]
    fn loss_bounds_match_the_contract() {
        assert_eq!(DurabilityMode::Strict.loss_bound(), Some(0));
        assert_eq!(
            DurabilityMode::Buffered {
                flush_interval: 100,
                max_loss: 5
            }
            .loss_bound(),
            Some(5)
        );
        assert_eq!(DurabilityMode::InMemory.loss_bound(), None);
    }

    #[test]
    fn tier_names_are_stable() {
        // The contract doc and recovery reports key on these strings.
        assert_eq!(DurabilityMode::InMemory.tier_name(), "in-memory");
        assert_eq!(DurabilityMode::buffered_default().tier_name(), "buffered");
        assert_eq!(DurabilityMode::Strict.tier_name(), "strict");
    }

    #[test]
    fn weakness_order_is_inmemory_buffered_strict() {
        let i = DurabilityMode::InMemory;
        let b = DurabilityMode::buffered_default();
        let s = DurabilityMode::Strict;
        assert!(i.weaker_or_equal(b) && i.weaker_or_equal(s));
        assert!(b.weaker_or_equal(s) && !b.weaker_or_equal(i));
        assert!(s.weaker_or_equal(s) && !s.weaker_or_equal(b));
    }

    #[test]
    fn paper_scheme_mapping() {
        assert_eq!(
            DurabilityMode::Strict.recommended_scheme(),
            PersistScheme::Strict
        );
        assert_eq!(
            DurabilityMode::buffered_default().recommended_scheme(),
            PersistScheme::triad_nvm(2)
        );
        assert_eq!(
            DurabilityMode::InMemory.recommended_scheme(),
            PersistScheme::WriteBack
        );
    }
}
