//! # triad-kv
//!
//! A crash-consistent, transactional key-value store built entirely on
//! [`triad_core::SecureMemory`] — the "real software" tier of the
//! Triad-NVM reproduction. Where `triad-workloads` drives the secure
//! memory with synthetic traces and toy structures, this crate layers a
//! proper storage protocol on top of it:
//!
//! * [`heap`] — the block-granular persistent bump allocator (moved
//!   here from `triad-workloads`, which re-exports it for
//!   compatibility).
//! * [`log`] — a redo write-ahead log of 64-B-aligned records with
//!   checksummed commit markers and torn-write detection.
//! * [`store`] — the [`KvStore`]: open/put/get/delete/scan over an
//!   on-NVM bucket index, with every mutation made durable through a
//!   log → commit-marker → apply transaction.
//!
//! Every persist goes through [`triad_core::SecureMemory::persist`],
//! i.e. through
//! the engine's atomic-persist/WPQ path, so the store is honest under
//! every persistence scheme (TriadNVM-1/2/3, Strict) and under crash
//! injection at any persist boundary. Recovery (log replay) reports
//! its work as a [`triad_core::LogReplayStats`], the `RecoveryReport`
//! extension this crate introduces.
//!
//! See `docs/kv.md` for the log format, the recovery protocol, and the
//! failure model.
//!
//! ```rust
//! use triad_core::{PersistScheme, SecureMemoryBuilder};
//! use triad_kv::{heap::PersistentHeap, KvConfig, KvStore};
//!
//! # fn main() -> Result<(), triad_kv::KvError> {
//! let mut mem = SecureMemoryBuilder::new()
//!     .scheme(PersistScheme::triad_nvm(2))
//!     .build()
//!     .map_err(triad_kv::KvError::Memory)?;
//! let heap = PersistentHeap::format(&mut mem)?;
//! let mut kv = KvStore::create(&mut mem, heap, KvConfig::default())?;
//! heap.set_root(&mut mem, kv.superblock().0)?;
//!
//! kv.put(&mut mem, 7, b"hello")?;
//! mem.crash();
//! let (mut kv, report) = triad_kv::recover_store(&mut mem)?;
//! assert!(report.persistent_recovered);
//! assert_eq!(kv.get(&mut mem, 7)?.as_deref(), Some(&b"hello"[..]));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use triad_core::SecureMemoryError;

pub mod heap;
pub mod log;
pub mod mode;
pub mod store;

pub use heap::{HeapError, PersistentHeap};
pub use log::RedoLog;
pub use mode::DurabilityMode;
pub use store::{recover_store, GroupReceipt, KvConfig, KvStats, KvStore};

/// Errors of the KV store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The underlying secure memory failed (tampering, crash, …).
    Memory(SecureMemoryError),
    /// The persistent heap failed (out of space, unformatted, …).
    Heap(HeapError),
    /// `open` found no store superblock at the given address.
    NotAStore,
    /// The value does not fit in the write-ahead log.
    ValueTooLarge {
        /// The rejected value length.
        len: usize,
        /// The largest length this store's log accepts.
        max: usize,
    },
    /// A transaction exceeded the write-ahead-log capacity.
    LogFull,
    /// A *single mutation*'s coalesced write set exceeds the
    /// write-ahead-log capacity. Distinguished from [`KvError::LogFull`]
    /// because the group-commit layer recovers from `LogFull` by
    /// splitting the group in half and retrying — a split can never
    /// shrink one mutation, so retrying is futile and the caller must
    /// reject the request (or grow the log) instead.
    GroupTooLarge,
    /// A fleet was asked for more shards than the directory supports.
    TooManyShards {
        /// The rejected shard count.
        requested: u64,
        /// The largest fleet the directory chain can describe.
        max: u64,
    },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::Memory(e) => write!(f, "secure memory error: {e}"),
            KvError::Heap(e) => write!(f, "persistent heap error: {e}"),
            KvError::NotAStore => write!(f, "no KV store superblock at the given address"),
            KvError::ValueTooLarge { len, max } => {
                write!(
                    f,
                    "value of {len} bytes exceeds the log-bounded max of {max}"
                )
            }
            KvError::LogFull => write!(f, "transaction exceeds write-ahead-log capacity"),
            KvError::GroupTooLarge => {
                write!(
                    f,
                    "a single mutation exceeds write-ahead-log capacity; splitting cannot help"
                )
            }
            KvError::TooManyShards { requested, max } => {
                write!(
                    f,
                    "fleet of {requested} shards exceeds the directory max of {max}"
                )
            }
        }
    }
}

impl Error for KvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KvError::Memory(e) => Some(e),
            KvError::Heap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SecureMemoryError> for KvError {
    fn from(e: SecureMemoryError) -> Self {
        KvError::Memory(e)
    }
}

impl From<HeapError> for KvError {
    fn from(e: HeapError) -> Self {
        // Lift memory errors out of the heap wrapper so callers match
        // crash/tamper conditions uniformly as `KvError::Memory`.
        match e {
            HeapError::Memory(m) => KvError::Memory(m),
            other => KvError::Heap(other),
        }
    }
}

/// Shorthand for KV results.
pub type Result<T> = std::result::Result<T, KvError>;

#[cfg(test)]
mod error_surface {
    use super::*;

    #[test]
    fn kv_errors_display_and_chain() {
        use std::error::Error as _;
        assert!(KvError::NotAStore.to_string().contains("superblock"));
        assert!(KvError::LogFull.to_string().contains("log"));
        // GroupTooLarge must stay distinguishable from LogFull: the
        // group-commit splitter retries on one and rejects on the other.
        assert_ne!(KvError::GroupTooLarge, KvError::LogFull);
        assert!(KvError::GroupTooLarge
            .to_string()
            .contains("single mutation"));
        assert!(KvError::GroupTooLarge.source().is_none());
        let e = KvError::ValueTooLarge {
            len: 9000,
            max: 512,
        };
        assert!(e.to_string().contains("9000"));
        assert!(e.source().is_none());
        let shards = KvError::TooManyShards {
            requested: 65,
            max: 64,
        };
        assert!(shards.to_string().contains("65"));
        assert!(shards.source().is_none());
        let wrapped = KvError::from(HeapError::OutOfSpace);
        assert_eq!(wrapped, KvError::Heap(HeapError::OutOfSpace));
        assert!(wrapped.source().is_some());
        let lifted = KvError::from(HeapError::Memory(SecureMemoryError::NeedsRecovery));
        assert_eq!(lifted, KvError::Memory(SecureMemoryError::NeedsRecovery));
        assert!(KvError::from(SecureMemoryError::NeedsRecovery)
            .to_string()
            .contains("secure memory"));
    }
}
