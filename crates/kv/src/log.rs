//! The redo write-ahead log: 64-B-block-aligned records with
//! checksummed commit markers.
//!
//! The log is a fixed run of blocks inside the store's heap
//! allocation. A transaction appends one *write record* (two blocks:
//! meta + payload) per block it will modify, then one single-block
//! *commit marker*, then applies the writes in place and rewinds the
//! in-memory cursor — the classical redo protocol, with every step
//! made durable through [`SecureMemory::persist`] so the engine's
//! atomic-persist machinery orders it.
//!
//! ## Record format (all integers little-endian)
//!
//! ```text
//! write meta block:  magic u32 @0 | kind=1 u8 @4 | seq u64 @8
//!                    | target u64 @16 | checksum u64 @24
//! write payload:     the full 64-byte new content of `target`
//! commit marker:     magic u32 @0 | kind=2 u8 @4 | seq u64 @8
//!                    | write_count u64 @16 | checksum u64 @24
//! ```
//!
//! Checksums are SipHash-2-4 under a fixed key over
//! `seq ‖ target ‖ payload` (write records) or `seq ‖ write_count`
//! (commit markers). They are *framing*, not security — the engine's
//! MACs and Bonsai Merkle Trees own integrity — and exist so recovery
//! can tell a torn tail from a complete record.
//!
//! ## Recovery scan
//!
//! [`RedoLog::replay`] scans from block 0. Transactions carry strictly
//! increasing sequence numbers, so stale records left over from an
//! earlier, longer transaction are recognised (their `seq` is not the
//! one the scan expects) and the scan stops. A record whose checksum
//! fails with a valid-looking magic is a torn tail; an all-zero block
//! is a clean end. Only a transaction whose commit marker verifies is
//! applied; replay is idempotent, so re-crashing during replay and
//! replaying again is safe. No durable log cursor exists — the cursor
//! is in-memory and rewound after apply, which is correct precisely
//! because replay re-derives everything from the records themselves.

use triad_core::{LogReplayStats, SecureMemory, WriteBatch};
use triad_crypto::SipHash24;
use triad_sim::{PhysAddr, BLOCK_BYTES};

use crate::{KvError, Result};

/// Magic leading every log record ("TKVL").
const LOG_MAGIC: u32 = u32::from_le_bytes(*b"TKVL");
const KIND_WRITE: u8 = 1;
const KIND_COMMIT: u8 = 2;

/// Fixed SipHash-2-4 key for record framing checksums (not secret:
/// torn-write detection only).
fn framing_hash() -> SipHash24 {
    SipHash24::new(*b"triad-kv log fmt")
}

fn read_u64(buf: &[u8; BLOCK_BYTES], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

fn write_checksum(seq: u64, target: u64, payload: &[u8; BLOCK_BYTES]) -> u64 {
    let mut buf = [0u8; 16 + BLOCK_BYTES];
    buf[..8].copy_from_slice(&seq.to_le_bytes());
    buf[8..16].copy_from_slice(&target.to_le_bytes());
    buf[16..].copy_from_slice(payload);
    framing_hash().hash(&buf)
}

fn commit_checksum(seq: u64, count: u64) -> u64 {
    framing_hash().hash_words(&[seq, count])
}

/// The write-ahead log of one [`crate::KvStore`] shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedoLog {
    base: PhysAddr,
    blocks: u64,
    /// Next free block index — volatile; recovery re-derives it.
    cursor: u64,
}

impl RedoLog {
    /// A log over `blocks` 64-B blocks starting at `base`.
    pub fn new(base: PhysAddr, blocks: u64) -> Self {
        RedoLog {
            base,
            blocks,
            cursor: 0,
        }
    }

    /// Log capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.blocks
    }

    /// Blocks still free before the next rewind.
    pub fn free_blocks(&self) -> u64 {
        self.blocks - self.cursor
    }

    fn block_addr(&self, index: u64) -> PhysAddr {
        PhysAddr(self.base.0 + index * BLOCK_BYTES as u64)
    }

    /// Appends one write record (meta + payload, both persisted).
    ///
    /// # Errors
    ///
    /// [`KvError::LogFull`] when fewer than two blocks remain.
    pub fn append_write(
        &mut self,
        mem: &mut SecureMemory,
        seq: u64,
        target: PhysAddr,
        payload: &[u8; BLOCK_BYTES],
    ) -> Result<()> {
        if self.cursor + 2 > self.blocks {
            return Err(KvError::LogFull);
        }
        let mut meta = [0u8; BLOCK_BYTES];
        meta[..4].copy_from_slice(&LOG_MAGIC.to_le_bytes());
        meta[4] = KIND_WRITE;
        meta[8..16].copy_from_slice(&seq.to_le_bytes());
        meta[16..24].copy_from_slice(&target.0.to_le_bytes());
        meta[24..32].copy_from_slice(&write_checksum(seq, target.0, payload).to_le_bytes());
        let maddr = self.block_addr(self.cursor);
        let paddr = self.block_addr(self.cursor + 1);
        mem.write(maddr, &meta)?;
        mem.persist(maddr)?;
        mem.write(paddr, payload)?;
        mem.persist(paddr)?;
        self.cursor += 2;
        Ok(())
    }

    /// Appends and persists the commit marker: the transaction's
    /// durability point.
    ///
    /// # Errors
    ///
    /// [`KvError::LogFull`] when the log is exhausted.
    pub fn append_commit(&mut self, mem: &mut SecureMemory, seq: u64, count: u64) -> Result<()> {
        if self.cursor + 1 > self.blocks {
            return Err(KvError::LogFull);
        }
        let mut marker = [0u8; BLOCK_BYTES];
        marker[..4].copy_from_slice(&LOG_MAGIC.to_le_bytes());
        marker[4] = KIND_COMMIT;
        marker[8..16].copy_from_slice(&seq.to_le_bytes());
        marker[16..24].copy_from_slice(&count.to_le_bytes());
        marker[24..32].copy_from_slice(&commit_checksum(seq, count).to_le_bytes());
        let addr = self.block_addr(self.cursor);
        mem.write(addr, &marker)?;
        mem.persist(addr)?;
        self.cursor += 1;
        Ok(())
    }

    /// Appends a whole transaction — every write record plus the
    /// commit marker — through one engine [`WriteBatch`].
    ///
    /// Members are pushed in log order and each member is its own
    /// durability point inside the batch, so a crash anywhere leaves a
    /// durable *prefix* of the records: the commit marker is durable
    /// only once every record before it is — exactly the ordering the
    /// scalar [`RedoLog::append_write`]/[`RedoLog::append_commit`]
    /// pair enforces — while the AES pad pass and the coalesced
    /// metadata commit are shared across the transaction (log blocks
    /// are consecutive, so their counters, MACs and BMT ancestors
    /// merge almost perfectly).
    ///
    /// # Errors
    ///
    /// [`KvError::LogFull`] when the transaction does not fit.
    pub fn append_txn(
        &mut self,
        mem: &mut SecureMemory,
        seq: u64,
        writes: &[(PhysAddr, [u8; BLOCK_BYTES])],
    ) -> Result<()> {
        let needed = 2 * writes.len() as u64 + 1;
        if self.cursor + needed > self.blocks {
            return Err(KvError::LogFull);
        }
        let mut batch = WriteBatch::new();
        let mut cursor = self.cursor;
        for (target, payload) in writes {
            let mut meta = [0u8; BLOCK_BYTES];
            meta[..4].copy_from_slice(&LOG_MAGIC.to_le_bytes());
            meta[4] = KIND_WRITE;
            meta[8..16].copy_from_slice(&seq.to_le_bytes());
            meta[16..24].copy_from_slice(&target.0.to_le_bytes());
            meta[24..32].copy_from_slice(&write_checksum(seq, target.0, payload).to_le_bytes());
            batch.push(self.block_addr(cursor).block(), meta);
            batch.push(self.block_addr(cursor + 1).block(), *payload);
            cursor += 2;
        }
        let mut marker = [0u8; BLOCK_BYTES];
        marker[..4].copy_from_slice(&LOG_MAGIC.to_le_bytes());
        marker[4] = KIND_COMMIT;
        marker[8..16].copy_from_slice(&seq.to_le_bytes());
        marker[16..24].copy_from_slice(&(writes.len() as u64).to_le_bytes());
        marker[24..32].copy_from_slice(&commit_checksum(seq, writes.len() as u64).to_le_bytes());
        batch.push(self.block_addr(cursor).block(), marker);
        mem.apply_batch(&batch)?;
        self.cursor = cursor + 1;
        Ok(())
    }

    /// Rewinds the in-memory cursor after a transaction's writes have
    /// been applied in place. The records stay in NVM; the next
    /// transaction's higher sequence number makes them unambiguously
    /// stale to any future replay.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// Scans the log from block 0, applying every fully-committed
    /// transaction (idempotent redo), and returns the replay stats plus
    /// the highest sequence number seen (0 when the log was empty) so
    /// the store can resume numbering above it.
    ///
    /// # Errors
    ///
    /// Propagates secure-memory errors (a tampered log surfaces as a
    /// MAC/BMT failure from the engine, never as a silent wrong apply).
    pub fn replay(&mut self, mem: &mut SecureMemory) -> Result<(LogReplayStats, u64)> {
        let mut stats = LogReplayStats::default();
        let mut max_seq = 0u64;
        let mut pending: Vec<(PhysAddr, [u8; BLOCK_BYTES])> = Vec::new();
        let mut pending_seq: Option<u64> = None;
        // Once a commit has been applied, anything unparseable past it
        // is leftovers of *earlier* transactions (appends always start
        // at block 0, so a fresh partial transaction is seen before any
        // commit marker) — stale, not torn.
        let mut committed = false;
        let mut i = 0u64;
        while i < self.blocks {
            let block = mem.read(self.block_addr(i))?;
            if block == [0u8; BLOCK_BYTES] {
                break; // clean end: fresh log space
            }
            let magic = u32::from_le_bytes([block[0], block[1], block[2], block[3]]);
            if magic != LOG_MAGIC {
                stats.torn_tail = !committed;
                break;
            }
            let kind = block[4];
            let seq = read_u64(&block, 8);
            match kind {
                KIND_WRITE => {
                    // A new transaction must carry a seq above anything
                    // seen; anything else is a stale leftover from an
                    // earlier, longer transaction.
                    match pending_seq {
                        None if seq <= max_seq => break,
                        Some(s) if seq != s => break,
                        _ => {}
                    }
                    if i + 1 >= self.blocks {
                        stats.torn_tail = !committed;
                        break;
                    }
                    let target = read_u64(&block, 16);
                    let payload = mem.read(self.block_addr(i + 1))?;
                    if read_u64(&block, 24) != write_checksum(seq, target, &payload) {
                        stats.torn_tail = !committed;
                        break;
                    }
                    pending_seq = Some(seq);
                    max_seq = max_seq.max(seq);
                    pending.push((PhysAddr(target), payload));
                    stats.records_scanned += 1;
                    i += 2;
                }
                KIND_COMMIT => {
                    let count = read_u64(&block, 16);
                    if read_u64(&block, 24) != commit_checksum(seq, count) {
                        stats.torn_tail = !committed;
                        break;
                    }
                    if pending_seq != Some(seq) || count != pending.len() as u64 {
                        break; // stale marker from an earlier transaction
                    }
                    stats.records_scanned += 1;
                    for (target, payload) in pending.drain(..) {
                        mem.write(target, &payload)?;
                        mem.persist(target)?;
                        stats.writes_applied += 1;
                    }
                    stats.txns_applied += 1;
                    committed = true;
                    pending_seq = None;
                    i += 1;
                }
                _ => {
                    stats.torn_tail = !committed;
                    break;
                }
            }
        }
        stats.records_discarded += pending.len() as u64;
        self.cursor = 0;
        Ok((stats, max_seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_core::{PersistScheme, SecureMemoryBuilder};

    fn mem() -> SecureMemory {
        SecureMemoryBuilder::new()
            .scheme(PersistScheme::triad_nvm(2))
            .build()
            .unwrap()
    }

    /// A log at the start of the persistent region plus one data block
    /// right after it.
    fn setup(mem: &mut SecureMemory, blocks: u64) -> (RedoLog, PhysAddr) {
        let base = mem.persistent_region().start();
        (
            RedoLog::new(base, blocks),
            PhysAddr(base.0 + blocks * BLOCK_BYTES as u64),
        )
    }

    #[test]
    fn committed_txn_replays_after_crash_before_apply() {
        let mut m = mem();
        let (mut log, data) = setup(&mut m, 8);
        log.append_write(&mut m, 1, data, &[7u8; 64]).unwrap();
        log.append_commit(&mut m, 1, 1).unwrap();
        // Crash before the in-place apply.
        m.crash();
        m.recover().unwrap();
        let mut log = RedoLog::new(log.base, log.blocks);
        let (stats, max_seq) = log.replay(&mut m).unwrap();
        assert_eq!(stats.txns_applied, 1);
        assert_eq!(stats.writes_applied, 1);
        assert_eq!(stats.records_scanned, 2);
        assert_eq!(stats.records_discarded, 0);
        assert!(!stats.torn_tail);
        assert_eq!(max_seq, 1);
        assert_eq!(m.read(data).unwrap(), [7u8; 64]);
    }

    #[test]
    fn uncommitted_txn_is_discarded() {
        let mut m = mem();
        let (mut log, data) = setup(&mut m, 8);
        log.append_write(&mut m, 1, data, &[7u8; 64]).unwrap();
        // No commit marker; crash.
        m.crash();
        m.recover().unwrap();
        let mut log = RedoLog::new(log.base, log.blocks);
        let (stats, max_seq) = log.replay(&mut m).unwrap();
        assert_eq!(stats.txns_applied, 0);
        assert_eq!(stats.records_discarded, 1);
        assert_eq!(max_seq, 1, "uncommitted seq still fences the numbering");
        assert_eq!(m.read(data).unwrap(), [0u8; 64], "must not be applied");
    }

    #[test]
    fn stale_leftover_records_are_not_replayed() {
        let mut m = mem();
        let (mut log, data) = setup(&mut m, 12);
        let d2 = PhysAddr(data.0 + 64);
        // Txn 1: three writes, committed and applied; cursor rewinds.
        for t in [data, d2, data] {
            log.append_write(&mut m, 1, t, &[1u8; 64]).unwrap();
        }
        log.append_commit(&mut m, 1, 3).unwrap();
        log.rewind();
        // Txn 2: one write, committed — overwrites only the first two
        // log blocks; txn 1's tail (blocks 2..7) is stale leftovers.
        log.append_write(&mut m, 2, data, &[2u8; 64]).unwrap();
        log.append_commit(&mut m, 2, 1).unwrap();
        m.crash();
        m.recover().unwrap();
        let mut log = RedoLog::new(log.base, log.blocks);
        let (stats, max_seq) = log.replay(&mut m).unwrap();
        assert_eq!(stats.txns_applied, 1, "only txn 2 must replay");
        assert_eq!(max_seq, 2);
        assert_eq!(m.read(data).unwrap(), [2u8; 64]);
        assert_eq!(m.read(d2).unwrap(), [0u8; 64], "stale write not applied");
    }

    #[test]
    fn torn_meta_block_is_detected() {
        let mut m = mem();
        let (mut log, data) = setup(&mut m, 8);
        log.append_write(&mut m, 1, data, &[3u8; 64]).unwrap();
        // Corrupt the payload under the meta's checksum: simulates a
        // torn pair (meta durable, payload not).
        m.write(PhysAddr(log.base.0 + 64), &[0xEE; 64]).unwrap();
        m.persist(PhysAddr(log.base.0 + 64)).unwrap();
        let mut log = RedoLog::new(log.base, log.blocks);
        let (stats, _) = log.replay(&mut m).unwrap();
        assert!(stats.torn_tail);
        assert_eq!(stats.txns_applied, 0);
        assert_eq!(m.read(data).unwrap(), [0u8; 64]);
    }

    #[test]
    fn garbage_magic_is_a_torn_tail() {
        let mut m = mem();
        let (log, _) = setup(&mut m, 4);
        m.write(log.base, &[0xAA; 64]).unwrap();
        m.persist(log.base).unwrap();
        let mut log = RedoLog::new(log.base, log.blocks);
        let (stats, max_seq) = log.replay(&mut m).unwrap();
        assert!(stats.torn_tail);
        assert_eq!(max_seq, 0);
    }

    #[test]
    fn replay_is_idempotent() {
        let mut m = mem();
        let (mut log, data) = setup(&mut m, 8);
        log.append_write(&mut m, 1, data, &[9u8; 64]).unwrap();
        log.append_commit(&mut m, 1, 1).unwrap();
        let mut log2 = RedoLog::new(log.base, log.blocks);
        let (s1, _) = log2.replay(&mut m).unwrap();
        let (s2, _) = log2.replay(&mut m).unwrap();
        assert_eq!(s1.txns_applied, 1);
        assert_eq!(s2.txns_applied, 1, "replaying twice applies the same state");
        assert_eq!(m.read(data).unwrap(), [9u8; 64]);
    }

    #[test]
    fn log_full_is_reported() {
        let mut m = mem();
        let (mut log, data) = setup(&mut m, 3);
        log.append_write(&mut m, 1, data, &[1u8; 64]).unwrap();
        assert_eq!(
            log.append_write(&mut m, 1, data, &[1u8; 64]).unwrap_err(),
            KvError::LogFull
        );
        log.append_commit(&mut m, 1, 1).unwrap();
        assert_eq!(log.free_blocks(), 0);
        assert_eq!(
            log.append_commit(&mut m, 1, 1).unwrap_err(),
            KvError::LogFull,
        );
        assert_eq!(log.capacity_blocks(), 3);
    }
}
