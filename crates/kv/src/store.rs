//! The [`KvStore`]: open/put/get/delete/scan over an on-NVM bucket
//! index, with redo-logged crash-atomic mutations.
//!
//! ## On-NVM layout
//!
//! One heap allocation per store shard, laid out as
//!
//! ```text
//! superblock (1 block) | bucket blocks (buckets/8) | log blocks
//! ```
//!
//! * **superblock**: magic, bucket count, bucket base, log base, log
//!   length — all little-endian u64s in one block.
//! * **bucket blocks**: 8 head pointers per block; `0` = empty chain.
//! * **entries**: allocated from the heap on demand. Block 0 holds
//!   `key @0 | next @8 | vlen @16 | first 40 value bytes @24`;
//!   longer values continue in the immediately following raw blocks.
//!
//! ## Mutation protocol
//!
//! Every put/delete computes its full write set (new entry blocks plus
//! the one pointer block that links them in), then runs
//! `log_txn → apply_writes → rewind`: `log_txn` batches the redo
//! records and the checksummed commit marker into one `WriteBatch` in
//! log order (per-member durability makes the marker — the last
//! member — the durability point, exactly as the scalar
//! append/commit sequence it replaced), the in-place apply follows.
//! The `persist-order` lint enforces that call order structurally. Old entry blocks are leaked on overwrite and
//! delete — the bump allocator never reuses space, which is exactly
//! what makes torn in-place updates impossible.

use std::collections::BTreeMap;

use triad_core::{LogReplayStats, RecoveryReport, SecureMemory, WriteBatch};
use triad_crypto::SipHash24;
use triad_sim::events::{emit, kind, SharedEventSink};
use triad_sim::stats::{Scope, StatRegister};
use triad_sim::{PhysAddr, BLOCK_BYTES};

use crate::heap::PersistentHeap;
use crate::log::RedoLog;
use crate::{KvError, Result};

/// Superblock magic ("TRIADKV1").
const KV_MAGIC: u64 = u64::from_le_bytes(*b"TRIADKV1");

const SB_MAGIC: usize = 0;
const SB_BUCKETS: usize = 8;
const SB_BUCKET_BASE: usize = 16;
const SB_LOG_BASE: usize = 24;
const SB_LOG_BLOCKS: usize = 32;

/// Entry block 0 layout offsets.
const ENT_KEY: usize = 0;
const ENT_NEXT: usize = 8;
const ENT_VLEN: usize = 16;
const ENT_INLINE: usize = 24;
/// Value bytes inline in entry block 0.
const INLINE_BYTES: usize = BLOCK_BYTES - ENT_INLINE;

fn read_u64(buf: &[u8; BLOCK_BYTES], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Sizing of a freshly created store shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvConfig {
    /// Hash-bucket count (rounded up to a multiple of 8, min 8).
    pub buckets: u64,
    /// Write-ahead-log length in 64-B blocks (min 8).
    pub log_blocks: u64,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            buckets: 64,
            log_blocks: 64,
        }
    }
}

/// Operation counters of one store shard; registered under the scope
/// the embedder chooses (the report harness uses `kv`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    /// Completed `put` transactions.
    pub puts: u64,
    /// `get` calls.
    pub gets: u64,
    /// `get` calls that found the key.
    pub get_hits: u64,
    /// `delete` calls.
    pub deletes: u64,
    /// `delete` calls that removed a key.
    pub delete_hits: u64,
    /// `scan` calls.
    pub scans: u64,
    /// Committed write-ahead-log transactions.
    pub txns_committed: u64,
    /// Write records appended to the log.
    pub log_records: u64,
    /// Group-commit flushes (each persisted exactly one commit marker).
    pub group_commits: u64,
    /// Key mutations carried by group-commit flushes.
    pub group_ops: u64,
}

impl StatRegister for KvStats {
    fn register(&self, scope: &mut Scope<'_>) {
        scope.set("puts", self.puts);
        scope.set("gets", self.gets);
        scope.set("get_hits", self.get_hits);
        scope.set("deletes", self.deletes);
        scope.set("delete_hits", self.delete_hits);
        scope.set("scans", self.scans);
        scope.set("txns_committed", self.txns_committed);
        scope.set("log_records", self.log_records);
        scope.set("group_commits", self.group_commits);
        scope.set("group_ops", self.group_ops);
    }
}

impl KvStats {
    /// Merges another shard's counters into this one (field-wise sum;
    /// deterministic regardless of shard visit order).
    pub fn merge(&mut self, other: &KvStats) {
        self.puts += other.puts;
        self.gets += other.gets;
        self.get_hits += other.get_hits;
        self.deletes += other.deletes;
        self.delete_hits += other.delete_hits;
        self.scans += other.scans;
        self.txns_committed += other.txns_committed;
        self.log_records += other.log_records;
        self.group_commits += other.group_commits;
        self.group_ops += other.group_ops;
    }
}

/// Where the pointer to a chain entry lives: a block address plus the
/// byte offset of the 8-byte pointer inside it (a bucket slot or a
/// predecessor entry's `next` field).
type Holder = (PhysAddr, usize);

/// Staged-but-unlogged writes of a group commit, keyed by block
/// address: reads during write-set computation consult this first so a
/// later mutation in the group sees the chains an earlier one built.
type Overlay = BTreeMap<u64, [u8; BLOCK_BYTES]>;

/// What one [`KvStore::apply_group`] flush did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupReceipt {
    /// Key mutations the group carried.
    pub ops: u64,
    /// Redo write records appended (coalesced: one per distinct block).
    pub log_records: u64,
    /// Commit markers persisted — 1 when anything was written, else 0.
    /// The whole point of group commit: this stays 1 no matter how
    /// many mutations the group carries.
    pub commit_markers: u64,
}

/// A chain hit: the holder that points at the entry, the entry's block
/// 0 address, and the entry's own `next` pointer.
struct ChainHit {
    holder: Holder,
    entry: PhysAddr,
    next: u64,
}

/// One crash-consistent KV store shard on the secure memory.
#[derive(Debug, Clone)]
pub struct KvStore {
    heap: PersistentHeap,
    superblock: PhysAddr,
    buckets: u64,
    bucket_base: PhysAddr,
    log: RedoLog,
    next_seq: u64,
    stats: KvStats,
    events: Option<SharedEventSink>,
}

impl KvStore {
    /// Creates a fresh store shard: allocates the superblock, bucket
    /// index, and log from `heap`, and persists the superblock. The
    /// caller owns publishing the returned [`KvStore::superblock`]
    /// address (heap root, directory block, …).
    ///
    /// # Errors
    ///
    /// [`KvError::Heap`] when the heap cannot fit the shard.
    pub fn create(mem: &mut SecureMemory, heap: PersistentHeap, cfg: KvConfig) -> Result<KvStore> {
        let buckets = cfg.buckets.max(8).div_ceil(8) * 8;
        let log_blocks = cfg.log_blocks.max(8);
        let bucket_blocks = buckets / 8;
        let base = heap.alloc_blocks(mem, 1 + bucket_blocks + log_blocks)?;
        let bucket_base = PhysAddr(base.0 + BLOCK_BYTES as u64);
        let log_base = PhysAddr(bucket_base.0 + bucket_blocks * BLOCK_BYTES as u64);
        // Bucket and log blocks are freshly allocated and therefore
        // all-zero (the bump allocator never reuses space): empty
        // chains and a clean log need no initialisation writes.
        let mut sb = [0u8; BLOCK_BYTES];
        sb[SB_MAGIC..SB_MAGIC + 8].copy_from_slice(&KV_MAGIC.to_le_bytes());
        sb[SB_BUCKETS..SB_BUCKETS + 8].copy_from_slice(&buckets.to_le_bytes());
        sb[SB_BUCKET_BASE..SB_BUCKET_BASE + 8].copy_from_slice(&bucket_base.0.to_le_bytes());
        sb[SB_LOG_BASE..SB_LOG_BASE + 8].copy_from_slice(&log_base.0.to_le_bytes());
        sb[SB_LOG_BLOCKS..SB_LOG_BLOCKS + 8].copy_from_slice(&log_blocks.to_le_bytes());
        mem.write(base, &sb)?;
        mem.persist(base)?;
        Ok(KvStore {
            heap,
            superblock: base,
            buckets,
            bucket_base,
            log: RedoLog::new(log_base, log_blocks),
            next_seq: 1,
            stats: KvStats::default(),
            events: None,
        })
    }

    /// Opens an existing shard at `superblock`, replaying the
    /// write-ahead log (idempotent redo). Returns the replay stats so
    /// recovery can account the work — see [`recover_store`].
    ///
    /// # Errors
    ///
    /// [`KvError::NotAStore`] when the superblock magic is absent.
    pub fn open(
        mem: &mut SecureMemory,
        heap: PersistentHeap,
        superblock: PhysAddr,
    ) -> Result<(KvStore, LogReplayStats)> {
        Self::open_with_events(mem, heap, superblock, None)
    }

    /// [`KvStore::open`] with an event sink attached before replay, so
    /// the [`triad_sim::events::kind::KV_REPLAY`] record lands in the
    /// trace.
    ///
    /// # Errors
    ///
    /// Same classes as [`KvStore::open`].
    pub fn open_with_events(
        mem: &mut SecureMemory,
        heap: PersistentHeap,
        superblock: PhysAddr,
        events: Option<SharedEventSink>,
    ) -> Result<(KvStore, LogReplayStats)> {
        let sb = mem.read(superblock)?;
        if read_u64(&sb, SB_MAGIC) != KV_MAGIC {
            return Err(KvError::NotAStore);
        }
        let buckets = read_u64(&sb, SB_BUCKETS);
        let bucket_base = PhysAddr(read_u64(&sb, SB_BUCKET_BASE));
        let log_base = PhysAddr(read_u64(&sb, SB_LOG_BASE));
        let log_blocks = read_u64(&sb, SB_LOG_BLOCKS);
        let mut log = RedoLog::new(log_base, log_blocks);
        let (replay, max_seq) = log.replay(mem)?;
        emit(
            &events,
            mem.now(),
            kind::KV_REPLAY,
            &[
                ("records_scanned", replay.records_scanned.into()),
                ("txns_applied", replay.txns_applied.into()),
                ("torn_tail", replay.torn_tail.into()),
            ],
        );
        let store = KvStore {
            heap,
            superblock,
            buckets,
            bucket_base,
            log,
            next_seq: max_seq + 1,
            stats: KvStats::default(),
            events,
        };
        Ok((store, replay))
    }

    /// The shard's superblock address (what `open` needs back).
    pub fn superblock(&self) -> PhysAddr {
        self.superblock
    }

    /// Operation counters accumulated since open/create.
    pub fn stats(&self) -> &KvStats {
        &self.stats
    }

    /// The sequence number the *next* committed transaction will take.
    /// Monotone across commits and reconstructed by recovery as
    /// `max committed seq + 1`, which is what makes it usable as a
    /// commit frontier: a caller that records `next_seq` before a
    /// group commit can tell, after a crash, whether that group's
    /// marker persisted (the recovered store's `next_seq` moved past
    /// the recorded value) or the group was rolled back.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Attaches a structured-event sink (see [`triad_sim::events`]).
    pub fn set_event_sink(&mut self, sink: SharedEventSink) {
        self.events = Some(sink);
    }

    /// The largest value length a single put can log, given the log
    /// size chosen at create time.
    pub fn max_value_bytes(&self) -> usize {
        // A put logs `entry_blocks + 1` write records (2 blocks each)
        // plus the commit marker.
        let budget = (self.log.capacity_blocks().saturating_sub(1) / 2).saturating_sub(1);
        if budget == 0 {
            return 0;
        }
        INLINE_BYTES + (budget as usize - 1) * BLOCK_BYTES
    }

    fn entry_blocks(vlen: usize) -> u64 {
        1 + vlen.saturating_sub(INLINE_BYTES).div_ceil(BLOCK_BYTES) as u64
    }

    /// The bucket slot (block address + byte offset) for `key`.
    fn slot_of(&self, key: u64) -> Holder {
        let bucket = SipHash24::new(*b"triad-kv buckets").hash_words(&[key]) % self.buckets;
        let addr = PhysAddr(self.bucket_base.0 + (bucket / 8) * BLOCK_BYTES as u64);
        (addr, (bucket % 8) as usize * 8)
    }

    /// Reads a block through a group-commit overlay: staged writes win
    /// over NVM contents, so chain walks during staging see the group's
    /// own earlier mutations.
    fn read_through(
        &self,
        mem: &mut SecureMemory,
        overlay: &Overlay,
        addr: PhysAddr,
    ) -> Result<[u8; BLOCK_BYTES]> {
        if let Some(block) = overlay.get(&addr.0) {
            return Ok(*block);
        }
        Ok(mem.read(addr)?)
    }

    /// Walks the chain from `key`'s bucket. Returns the chain head and,
    /// when the key exists, its [`ChainHit`].
    fn find(&self, mem: &mut SecureMemory, key: u64) -> Result<(u64, Option<ChainHit>)> {
        self.find_in(mem, &Overlay::new(), key)
    }

    /// [`KvStore::find`] through a staging overlay: reads consult the
    /// overlay first, so a put staged earlier in the same group is
    /// found (and correctly replaced or unlinked) by a later mutation.
    fn find_in(
        &self,
        mem: &mut SecureMemory,
        overlay: &Overlay,
        key: u64,
    ) -> Result<(u64, Option<ChainHit>)> {
        let slot = self.slot_of(key);
        let head = read_u64(&self.read_through(mem, overlay, slot.0)?, slot.1);
        let mut holder = slot;
        let mut ptr = head;
        while ptr != 0 {
            let block0 = self.read_through(mem, overlay, PhysAddr(ptr))?;
            let next = read_u64(&block0, ENT_NEXT);
            if read_u64(&block0, ENT_KEY) == key {
                return Ok((
                    head,
                    Some(ChainHit {
                        holder,
                        entry: PhysAddr(ptr),
                        next,
                    }),
                ));
            }
            holder = (PhysAddr(ptr), ENT_NEXT);
            ptr = next;
        }
        Ok((head, None))
    }

    /// Reads the value of the entry whose block 0 is at `entry`.
    fn read_value(&self, mem: &mut SecureMemory, entry: PhysAddr) -> Result<Vec<u8>> {
        let block0 = mem.read(entry)?;
        let vlen = read_u64(&block0, ENT_VLEN) as usize;
        let mut out = Vec::with_capacity(vlen);
        out.extend_from_slice(&block0[ENT_INLINE..ENT_INLINE + vlen.min(INLINE_BYTES)]);
        let mut next_block = 1u64;
        while out.len() < vlen {
            let addr = PhysAddr(entry.0 + next_block * BLOCK_BYTES as u64);
            let block = mem.read(addr)?;
            let take = (vlen - out.len()).min(BLOCK_BYTES);
            out.extend_from_slice(&block[..take]);
            next_block += 1;
        }
        Ok(out)
    }

    /// Appends redo records for every write of the transaction.
    /// Batched log append + commit: appends the write records and the
    /// commit marker as one [`WriteBatch`] log transaction (see
    /// [`RedoLog::append_txn`]). The marker is the batch's last
    /// durability point, so the transaction's commit semantics are
    /// unchanged from the scalar [`RedoLog::append_write`] /
    /// [`RedoLog::append_commit`] protocol.
    ///
    /// [`RedoLog::append_txn`]: crate::log::RedoLog::append_txn
    /// [`RedoLog::append_write`]: crate::log::RedoLog::append_write
    /// [`RedoLog::append_commit`]: crate::log::RedoLog::append_commit
    fn log_txn(
        &mut self,
        mem: &mut SecureMemory,
        seq: u64,
        writes: &[(PhysAddr, [u8; BLOCK_BYTES])],
    ) -> Result<()> {
        self.log.append_txn(mem, seq, writes)?;
        self.stats.log_records += writes.len() as u64;
        self.stats.txns_committed += 1;
        emit(
            &self.events,
            mem.now(),
            kind::KV_TXN_COMMIT,
            &[("seq", seq.into()), ("writes", writes.len().into())],
        );
        Ok(())
    }

    /// Applies the committed write set in place, through the engine's
    /// batched write path: one queued batch shares the AES pad pass,
    /// the prefetch plan and the coalesced metadata commit across the
    /// transaction's blocks (each block still consumes one durability
    /// point, so crash-boundary sweeps see the same granularity as the
    /// scalar walk).
    fn apply_writes(
        &mut self,
        mem: &mut SecureMemory,
        writes: &[(PhysAddr, [u8; BLOCK_BYTES])],
    ) -> Result<()> {
        let mut batch = WriteBatch::new();
        for (target, payload) in writes {
            batch.push(target.block(), *payload);
        }
        mem.apply_batch(&batch)?;
        Ok(())
    }

    /// Inserts or replaces `key`, durably. The full redo transaction —
    /// new entry blocks plus the one pointer that links them in — is
    /// applied all-or-nothing; a crash anywhere leaves either the old
    /// or the new value visible after recovery, never a mix.
    ///
    /// # Errors
    ///
    /// [`KvError::ValueTooLarge`] when the value exceeds
    /// [`KvStore::max_value_bytes`]; heap/memory errors otherwise.
    pub fn put(&mut self, mem: &mut SecureMemory, key: u64, value: &[u8]) -> Result<()> {
        if value.len() > self.max_value_bytes() {
            return Err(KvError::ValueTooLarge {
                len: value.len(),
                max: self.max_value_bytes(),
            });
        }
        let (head, found) = self.find(mem, key)?;
        let n_blocks = Self::entry_blocks(value.len());
        let base = self.heap.alloc_blocks(mem, n_blocks)?;

        let mut writes: Vec<(PhysAddr, [u8; BLOCK_BYTES])> =
            Vec::with_capacity(n_blocks as usize + 1);
        let next = found.as_ref().map_or(head, |f| f.next);
        let mut block0 = [0u8; BLOCK_BYTES];
        block0[ENT_KEY..ENT_KEY + 8].copy_from_slice(&key.to_le_bytes());
        block0[ENT_NEXT..ENT_NEXT + 8].copy_from_slice(&next.to_le_bytes());
        block0[ENT_VLEN..ENT_VLEN + 8].copy_from_slice(&(value.len() as u64).to_le_bytes());
        let inline = value.len().min(INLINE_BYTES);
        block0[ENT_INLINE..ENT_INLINE + inline].copy_from_slice(&value[..inline]);
        writes.push((base, block0));
        for (i, chunk) in value[inline..].chunks(BLOCK_BYTES).enumerate() {
            let mut block = [0u8; BLOCK_BYTES];
            block[..chunk.len()].copy_from_slice(chunk);
            writes.push((
                PhysAddr(base.0 + (i as u64 + 1) * BLOCK_BYTES as u64),
                block,
            ));
        }
        // The linking write: the bucket slot (fresh key) or whichever
        // pointer led to the replaced entry (the old entry is unlinked
        // and leaked).
        let (haddr, hoff) = found
            .as_ref()
            .map_or_else(|| self.slot_of(key), |f| f.holder);
        let mut hblock = mem.read(haddr)?;
        hblock[hoff..hoff + 8].copy_from_slice(&base.0.to_le_bytes());
        writes.push((haddr, hblock));

        let seq = self.next_seq;
        self.log_txn(mem, seq, &writes)?;
        self.next_seq += 1;
        self.apply_writes(mem, &writes)?;
        self.log.rewind();
        self.stats.puts += 1;
        emit(
            &self.events,
            mem.now(),
            kind::KV_PUT,
            &[
                ("key", key.into()),
                ("vlen", value.len().into()),
                ("seq", seq.into()),
            ],
        );
        Ok(())
    }

    /// Reads `key`'s value, if present.
    ///
    /// # Errors
    ///
    /// Propagates secure-memory errors.
    pub fn get(&mut self, mem: &mut SecureMemory, key: u64) -> Result<Option<Vec<u8>>> {
        self.stats.gets += 1;
        let (_, found) = self.find(mem, key)?;
        match found {
            Some(hit) => {
                self.stats.get_hits += 1;
                Ok(Some(self.read_value(mem, hit.entry)?))
            }
            None => Ok(None),
        }
    }

    /// Removes `key`, durably. Returns whether it was present. The
    /// entry's blocks are leaked (bump allocator; see module docs).
    ///
    /// # Errors
    ///
    /// Propagates heap/memory errors.
    pub fn delete(&mut self, mem: &mut SecureMemory, key: u64) -> Result<bool> {
        self.stats.deletes += 1;
        let (_, found) = self.find(mem, key)?;
        let Some(hit) = found else {
            emit(
                &self.events,
                mem.now(),
                kind::KV_DELETE,
                &[("key", key.into()), ("found", false.into())],
            );
            return Ok(false);
        };
        let (haddr, hoff) = hit.holder;
        let mut hblock = mem.read(haddr)?;
        hblock[hoff..hoff + 8].copy_from_slice(&hit.next.to_le_bytes());
        let writes = [(haddr, hblock)];

        let seq = self.next_seq;
        self.log_txn(mem, seq, &writes)?;
        self.next_seq += 1;
        self.apply_writes(mem, &writes)?;
        self.log.rewind();
        self.stats.delete_hits += 1;
        emit(
            &self.events,
            mem.now(),
            kind::KV_DELETE,
            &[
                ("key", key.into()),
                ("found", true.into()),
                ("seq", seq.into()),
            ],
        );
        Ok(true)
    }

    /// Stages a put into `overlay`: allocates and fills the entry
    /// blocks and patches the linking pointer, all as overlay entries —
    /// nothing is logged or applied yet.
    fn stage_put(
        &mut self,
        mem: &mut SecureMemory,
        overlay: &mut Overlay,
        key: u64,
        value: &[u8],
    ) -> Result<()> {
        if value.len() > self.max_value_bytes() {
            return Err(KvError::ValueTooLarge {
                len: value.len(),
                max: self.max_value_bytes(),
            });
        }
        let (head, found) = self.find_in(mem, overlay, key)?;
        let n_blocks = Self::entry_blocks(value.len());
        let base = self.heap.alloc_blocks(mem, n_blocks)?;

        let next = found.as_ref().map_or(head, |f| f.next);
        let mut block0 = [0u8; BLOCK_BYTES];
        block0[ENT_KEY..ENT_KEY + 8].copy_from_slice(&key.to_le_bytes());
        block0[ENT_NEXT..ENT_NEXT + 8].copy_from_slice(&next.to_le_bytes());
        block0[ENT_VLEN..ENT_VLEN + 8].copy_from_slice(&(value.len() as u64).to_le_bytes());
        let inline = value.len().min(INLINE_BYTES);
        block0[ENT_INLINE..ENT_INLINE + inline].copy_from_slice(&value[..inline]);
        overlay.insert(base.0, block0);
        for (i, chunk) in value[inline..].chunks(BLOCK_BYTES).enumerate() {
            let mut block = [0u8; BLOCK_BYTES];
            block[..chunk.len()].copy_from_slice(chunk);
            overlay.insert(base.0 + (i as u64 + 1) * BLOCK_BYTES as u64, block);
        }
        let (haddr, hoff) = found
            .as_ref()
            .map_or_else(|| self.slot_of(key), |f| f.holder);
        let mut hblock = self.read_through(mem, overlay, haddr)?;
        hblock[hoff..hoff + 8].copy_from_slice(&base.0.to_le_bytes());
        overlay.insert(haddr.0, hblock);
        Ok(())
    }

    /// Stages a delete into `overlay` (the unlinking pointer write).
    /// Returns whether the key was present — in NVM or staged earlier
    /// in the same group.
    fn stage_delete(
        &mut self,
        mem: &mut SecureMemory,
        overlay: &mut Overlay,
        key: u64,
    ) -> Result<bool> {
        let (_, found) = self.find_in(mem, overlay, key)?;
        let Some(hit) = found else {
            return Ok(false);
        };
        let (haddr, hoff) = hit.holder;
        let mut hblock = self.read_through(mem, overlay, haddr)?;
        hblock[hoff..hoff + 8].copy_from_slice(&hit.next.to_le_bytes());
        overlay.insert(haddr.0, hblock);
        Ok(true)
    }

    /// Group commit: applies a whole batch of key mutations (`Some` =
    /// put, `None` = delete) as **one** redo transaction with **one**
    /// commit marker — the per-transaction marker persist that
    /// dominates small-put cost is amortized across the group.
    ///
    /// Mutations are staged left to right against an overlay, so the
    /// result is exactly the serial execution of the batch (duplicate
    /// keys resolve last-wins, a delete removes a put staged earlier in
    /// the same group). Writes to the same block coalesce: the group's
    /// redo footprint is one record per distinct block touched. The
    /// group is crash-atomic as a unit — a crash before the marker
    /// discards every mutation, after it recovery redoes them all.
    ///
    /// # Errors
    ///
    /// [`KvError::ValueTooLarge`] per oversized value;
    /// [`KvError::LogFull`] when the coalesced write set of a
    /// multi-mutation group exceeds the log (retry with a smaller
    /// group); [`KvError::GroupTooLarge`] when a *single* mutation's
    /// write set overflows the log — splitting cannot shrink it, so
    /// retrying is futile and the mutation must be rejected. Either
    /// way nothing was logged or applied and the transaction sequence
    /// number was not burned: failed groups only leak staged heap
    /// blocks, which the bump allocator tolerates by design.
    pub fn apply_group(
        &mut self,
        mem: &mut SecureMemory,
        muts: &[(u64, Option<Vec<u8>>)],
    ) -> Result<GroupReceipt> {
        let mut overlay = Overlay::new();
        let mut staged_puts = 0u64;
        let mut staged_deletes = 0u64;
        let mut staged_delete_hits = 0u64;
        for (key, value) in muts {
            match value {
                Some(v) => {
                    self.stage_put(mem, &mut overlay, *key, v)?;
                    staged_puts += 1;
                }
                None => {
                    staged_deletes += 1;
                    if self.stage_delete(mem, &mut overlay, *key)? {
                        staged_delete_hits += 1;
                    }
                }
            }
        }
        if overlay.is_empty() {
            // All-miss deletes (or an empty batch): nothing to make
            // durable, no marker burned.
            self.stats.deletes += staged_deletes;
            return Ok(GroupReceipt {
                ops: muts.len() as u64,
                log_records: 0,
                commit_markers: 0,
            });
        }
        let writes: Vec<(PhysAddr, [u8; BLOCK_BYTES])> = overlay
            .iter()
            .map(|(addr, block)| (PhysAddr(*addr), *block))
            .collect();
        let seq = self.next_seq;
        self.log_txn(mem, seq, &writes).map_err(|e| match e {
            // A split retries halves of the group, but a single
            // mutation has no halves: surface a non-retryable error.
            KvError::LogFull if muts.len() == 1 => KvError::GroupTooLarge,
            other => other,
        })?;
        // Burned only after the append succeeded, so a rejected group
        // leaves no gap in the log's sequence numbering.
        self.next_seq += 1;
        self.apply_writes(mem, &writes)?;
        self.log.rewind();
        self.stats.puts += staged_puts;
        self.stats.deletes += staged_deletes;
        self.stats.delete_hits += staged_delete_hits;
        self.stats.group_commits += 1;
        self.stats.group_ops += muts.len() as u64;
        emit(
            &self.events,
            mem.now(),
            kind::KV_GROUP_COMMIT,
            &[
                ("seq", seq.into()),
                ("ops", muts.len().into()),
                ("writes", writes.len().into()),
            ],
        );
        Ok(GroupReceipt {
            ops: muts.len() as u64,
            log_records: writes.len() as u64,
            commit_markers: 1,
        })
    }

    /// Returns every (key, value) pair, sorted by key.
    ///
    /// # Errors
    ///
    /// Propagates secure-memory errors.
    pub fn scan(&mut self, mem: &mut SecureMemory) -> Result<Vec<(u64, Vec<u8>)>> {
        self.stats.scans += 1;
        let mut out = BTreeMap::new();
        let bucket_blocks = self.buckets / 8;
        for b in 0..bucket_blocks {
            let block = mem.read(PhysAddr(self.bucket_base.0 + b * BLOCK_BYTES as u64))?;
            for slot in 0..8 {
                let mut ptr = read_u64(&block, slot * 8);
                while ptr != 0 {
                    let entry = PhysAddr(ptr);
                    let block0 = mem.read(entry)?;
                    let key = read_u64(&block0, ENT_KEY);
                    let value = self.read_value(mem, entry)?;
                    out.insert(key, value);
                    ptr = read_u64(&block0, ENT_NEXT);
                }
            }
        }
        Ok(out.into_iter().collect())
    }
}

/// One-call crash recovery for a single-store heap: engine recovery,
/// heap open (heap-level redo), store open (WAL replay), with the
/// replay work merged into the returned [`RecoveryReport`] — the
/// `log_replay` extension this crate adds to the report.
///
/// Expects the heap root to hold the store's superblock address (as
/// `examples/kv_demo.rs` sets it up); multi-shard embedders do their
/// own directory walk and merge instead.
///
/// # Errors
///
/// [`KvError::NotAStore`] when the heap root is unset or points at
/// something that is not a superblock; recovery/heap errors otherwise.
pub fn recover_store(mem: &mut SecureMemory) -> Result<(KvStore, RecoveryReport)> {
    let mut report = mem.recover()?;
    let heap = PersistentHeap::open(mem)?;
    let root = heap.root(mem)?;
    if root == 0 {
        return Err(KvError::NotAStore);
    }
    let (store, replay) = KvStore::open(mem, heap, PhysAddr(root))?;
    report.log_replay = Some(replay);
    Ok((store, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_core::{PersistScheme, SecureMemoryBuilder, SecureMemoryError};
    use triad_sim::events::EventSink;

    fn mem() -> SecureMemory {
        SecureMemoryBuilder::new()
            .scheme(PersistScheme::triad_nvm(2))
            .build()
            .unwrap()
    }

    fn small() -> KvConfig {
        KvConfig {
            buckets: 16,
            log_blocks: 32,
        }
    }

    fn fresh(m: &mut SecureMemory) -> KvStore {
        let heap = PersistentHeap::format(m).unwrap();
        let kv = KvStore::create(m, heap, small()).unwrap();
        heap.set_root(m, kv.superblock().0).unwrap();
        kv
    }

    #[test]
    fn put_get_delete_round_trip() {
        let mut m = mem();
        let mut kv = fresh(&mut m);
        assert_eq!(kv.get(&mut m, 1).unwrap(), None);
        kv.put(&mut m, 1, b"one").unwrap();
        kv.put(&mut m, 2, b"two").unwrap();
        assert_eq!(kv.get(&mut m, 1).unwrap().as_deref(), Some(&b"one"[..]));
        assert_eq!(kv.get(&mut m, 2).unwrap().as_deref(), Some(&b"two"[..]));
        assert!(kv.delete(&mut m, 1).unwrap());
        assert!(!kv.delete(&mut m, 1).unwrap());
        assert_eq!(kv.get(&mut m, 1).unwrap(), None);
        assert_eq!(kv.get(&mut m, 2).unwrap().as_deref(), Some(&b"two"[..]));
        let s = kv.stats();
        assert_eq!((s.puts, s.deletes, s.delete_hits), (2, 2, 1));
        assert_eq!(s.gets, 5);
        assert_eq!(s.get_hits, 3);
    }

    #[test]
    fn overwrite_replaces_in_place_in_the_chain() {
        let mut m = mem();
        let mut kv = fresh(&mut m);
        for k in 0..40u64 {
            kv.put(&mut m, k, &k.to_le_bytes()).unwrap();
        }
        kv.put(&mut m, 17, b"replaced").unwrap();
        assert_eq!(
            kv.get(&mut m, 17).unwrap().as_deref(),
            Some(&b"replaced"[..])
        );
        // Every other key is untouched.
        for k in (0..40u64).filter(|&k| k != 17) {
            assert_eq!(
                kv.get(&mut m, k).unwrap().as_deref(),
                Some(&k.to_le_bytes()[..])
            );
        }
    }

    #[test]
    fn variable_size_values_round_trip() {
        let mut m = mem();
        let mut kv = fresh(&mut m);
        // 0 bytes, inline-exact, inline+1, multi-block, and max size.
        let sizes = [0, 1, 40, 41, 104, 200, kv.max_value_bytes()];
        for (k, &len) in sizes.iter().enumerate() {
            let v: Vec<u8> = (0..len).map(|i| (i * 7 + k) as u8).collect();
            kv.put(&mut m, k as u64, &v).unwrap();
            assert_eq!(kv.get(&mut m, k as u64).unwrap().as_deref(), Some(&v[..]));
        }
        // Still intact after neighbours were written.
        for (k, &len) in sizes.iter().enumerate() {
            let v: Vec<u8> = (0..len).map(|i| (i * 7 + k) as u8).collect();
            assert_eq!(kv.get(&mut m, k as u64).unwrap().as_deref(), Some(&v[..]));
        }
    }

    #[test]
    fn oversized_value_rejected() {
        let mut m = mem();
        let mut kv = fresh(&mut m);
        let max = kv.max_value_bytes();
        let v = vec![0u8; max + 1];
        assert_eq!(
            kv.put(&mut m, 1, &v).unwrap_err(),
            KvError::ValueTooLarge { len: max + 1, max }
        );
        assert_eq!(kv.get(&mut m, 1).unwrap(), None);
    }

    #[test]
    fn scan_returns_sorted_pairs() {
        let mut m = mem();
        let mut kv = fresh(&mut m);
        for k in [9u64, 3, 27, 1] {
            kv.put(&mut m, k, &[k as u8]).unwrap();
        }
        kv.delete(&mut m, 27).unwrap();
        let pairs = kv.scan(&mut m).unwrap();
        assert_eq!(pairs, vec![(1, vec![1u8]), (3, vec![3u8]), (9, vec![9u8]),]);
    }

    #[test]
    fn reopen_after_clean_crash_preserves_state() {
        let mut m = mem();
        let mut kv = fresh(&mut m);
        kv.put(&mut m, 5, b"five").unwrap();
        kv.put(&mut m, 6, b"six").unwrap();
        kv.delete(&mut m, 5).unwrap();
        m.crash();
        let (mut kv, report) = recover_store(&mut m).unwrap();
        assert!(report.persistent_recovered);
        let replay = report.log_replay.unwrap();
        // The last txn (the delete) is still in the log and re-applies
        // idempotently.
        assert_eq!(replay.txns_applied, 1);
        assert!(!replay.torn_tail);
        assert_eq!(kv.get(&mut m, 5).unwrap(), None);
        assert_eq!(kv.get(&mut m, 6).unwrap().as_deref(), Some(&b"six"[..]));
    }

    #[test]
    fn crash_between_commit_and_apply_redoes_the_txn() {
        let mut m = mem();
        let mut kv = fresh(&mut m);
        kv.put(&mut m, 1, b"old").unwrap();
        // The overwrite's durability points: heap cursor (1), 2 write
        // records (4), commit marker (1); crash on the first in-place
        // apply, i.e. boundary 6.
        m.inject_crash_after_persists(6);
        assert_eq!(
            kv.put(&mut m, 1, b"new").unwrap_err(),
            KvError::Memory(SecureMemoryError::NeedsRecovery)
        );
        let (mut kv, report) = recover_store(&mut m).unwrap();
        let replay = report.log_replay.unwrap();
        assert_eq!(replay.txns_applied, 1, "committed txn must be redone");
        assert_eq!(kv.get(&mut m, 1).unwrap().as_deref(), Some(&b"new"[..]));
    }

    #[test]
    fn crash_before_commit_discards_the_txn() {
        let mut m = mem();
        let mut kv = fresh(&mut m);
        kv.put(&mut m, 1, b"old").unwrap();
        // Crash while appending redo records, before the commit marker.
        m.inject_crash_after_persists(2);
        assert_eq!(
            kv.put(&mut m, 1, b"new").unwrap_err(),
            KvError::Memory(SecureMemoryError::NeedsRecovery)
        );
        let (mut kv, report) = recover_store(&mut m).unwrap();
        let replay = report.log_replay.unwrap();
        assert_eq!(replay.txns_applied, 0);
        assert_eq!(kv.get(&mut m, 1).unwrap().as_deref(), Some(&b"old"[..]));
    }

    #[test]
    fn open_rejects_non_superblock() {
        let mut m = mem();
        let heap = PersistentHeap::format(&mut m).unwrap();
        let junk = heap.alloc_blocks(&mut m, 1).unwrap();
        assert_eq!(
            KvStore::open(&mut m, heap, junk).unwrap_err(),
            KvError::NotAStore
        );
        // recover_store with an unset root also refuses.
        m.crash();
        assert_eq!(recover_store(&mut m).unwrap_err(), KvError::NotAStore);
    }

    #[test]
    fn events_are_emitted_for_mutations() {
        use std::io::Write;
        use std::sync::{Arc, Mutex};
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut m = mem();
        let mut kv = fresh(&mut m);
        let buf = Arc::new(Mutex::new(Vec::new()));
        kv.set_event_sink(EventSink::shared(Box::new(SharedBuf(buf.clone()))));
        kv.put(&mut m, 1, b"x").unwrap();
        kv.delete(&mut m, 1).unwrap();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert!(text.contains("\"event\":\"kv_put\""));
        assert!(text.contains("\"event\":\"kv_txn_commit\""));
        assert!(text.contains("\"event\":\"kv_delete\""));
    }

    #[test]
    fn stats_register_exposes_every_counter() {
        use triad_sim::stats::StatRegistry;
        let mut m = mem();
        let mut kv = fresh(&mut m);
        kv.put(&mut m, 1, b"x").unwrap();
        kv.scan(&mut m).unwrap();
        kv.apply_group(&mut m, &[(2, Some(b"y".to_vec()))]).unwrap();
        let mut reg = StatRegistry::new();
        kv.stats().register(&mut reg.scope("kv"));
        assert_eq!(reg.counter("kv.puts"), 2);
        assert_eq!(reg.counter("kv.scans"), 1);
        assert_eq!(reg.counter("kv.txns_committed"), 2);
        assert_eq!(reg.counter("kv.group_commits"), 1);
        assert_eq!(reg.counter("kv.group_ops"), 1);
        assert!(reg.counter("kv.log_records") >= 2);
    }

    /// Two distinct fresh keys sharing `k`'s bucket slot — the chain
    /// case where staging against stale NVM state (no overlay) would
    /// silently drop all but the last insert.
    fn same_slot_keys(kv: &KvStore, from: u64) -> (u64, u64) {
        let a = from;
        let slot = kv.slot_of(a);
        let b = (a + 1..).find(|&k| kv.slot_of(k) == slot).unwrap();
        (a, b)
    }

    #[test]
    fn group_commit_is_serially_equivalent_with_one_marker() {
        let mut serial_m = mem();
        let mut serial = fresh(&mut serial_m);
        let mut grouped_m = mem();
        let mut grouped = fresh(&mut grouped_m);

        let (a, b) = same_slot_keys(&serial, 100);
        // Same-bucket fresh inserts, an overwrite of a key put earlier
        // in the same group (last-wins), a put+delete of one key, and a
        // delete miss — the full staging surface.
        let ops: Vec<(u64, Option<Vec<u8>>)> = vec![
            (a, Some(b"first".to_vec())),
            (b, Some(b"second".to_vec())),
            (a, Some(b"rewritten".to_vec())),
            (7, Some(b"doomed".to_vec())),
            (7, None),
            (9999, None),
        ];
        for (k, v) in &ops {
            match v {
                Some(v) => serial.put(&mut serial_m, *k, v).unwrap(),
                None => {
                    serial.delete(&mut serial_m, *k).unwrap();
                }
            }
        }
        let receipt = grouped.apply_group(&mut grouped_m, &ops).unwrap();

        assert_eq!(
            serial.scan(&mut serial_m).unwrap(),
            grouped.scan(&mut grouped_m).unwrap()
        );
        assert_eq!(receipt.ops, 6);
        assert_eq!(receipt.commit_markers, 1, "one marker for the whole group");
        assert!(receipt.log_records >= 4);
        let (s, g) = (serial.stats(), grouped.stats());
        assert_eq!(s.txns_committed, 5, "serial: one marker per mutation");
        assert_eq!(g.txns_committed, 1, "grouped: one marker total");
        assert_eq!(
            (g.puts, g.deletes, g.delete_hits),
            (s.puts, s.deletes, s.delete_hits)
        );
        assert_eq!((g.group_commits, g.group_ops), (1, 6));
        assert_eq!((s.group_commits, s.group_ops), (0, 0));
    }

    #[test]
    fn empty_and_all_miss_groups_burn_no_marker() {
        let mut m = mem();
        let mut kv = fresh(&mut m);
        let r = kv.apply_group(&mut m, &[]).unwrap();
        assert_eq!(r, GroupReceipt::default());
        let r = kv.apply_group(&mut m, &[(5, None), (6, None)]).unwrap();
        assert_eq!((r.ops, r.log_records, r.commit_markers), (2, 0, 0));
        let s = kv.stats();
        assert_eq!((s.txns_committed, s.deletes, s.group_commits), (0, 2, 0));
    }

    #[test]
    fn group_crash_before_marker_discards_every_mutation() {
        let mut m = mem();
        let mut kv = fresh(&mut m);
        kv.put(&mut m, 1, b"old").unwrap();
        // Group persist schedule: one heap-cursor persist per put, then
        // 2 persists per redo record, then the marker. Crash mid-append,
        // after the allocations and the first record block.
        m.inject_crash_after_persists(3);
        let ops = vec![(1, Some(b"new".to_vec())), (2, Some(b"two".to_vec()))];
        assert_eq!(
            kv.apply_group(&mut m, &ops).unwrap_err(),
            KvError::Memory(SecureMemoryError::NeedsRecovery)
        );
        let (mut kv, report) = recover_store(&mut m).unwrap();
        assert_eq!(report.log_replay.unwrap().txns_applied, 0);
        assert_eq!(kv.get(&mut m, 1).unwrap().as_deref(), Some(&b"old"[..]));
        assert_eq!(kv.get(&mut m, 2).unwrap(), None);
    }

    #[test]
    fn group_crash_after_marker_redoes_every_mutation() {
        // Twin run to learn the group's coalesced record count, so the
        // crash boundary lands exactly on the first in-place apply.
        let ops = vec![(1u64, Some(b"new".to_vec())), (2, Some(b"two".to_vec()))];
        let mut twin_m = mem();
        let mut twin = fresh(&mut twin_m);
        twin.put(&mut twin_m, 1, b"old").unwrap();
        let receipt = twin.apply_group(&mut twin_m, &ops).unwrap();

        let mut m = mem();
        let mut kv = fresh(&mut m);
        kv.put(&mut m, 1, b"old").unwrap();
        // 2 alloc persists + 2 per record + 1 marker, then apply.
        m.inject_crash_after_persists(2 + 2 * receipt.log_records + 1);
        assert_eq!(
            kv.apply_group(&mut m, &ops).unwrap_err(),
            KvError::Memory(SecureMemoryError::NeedsRecovery)
        );
        let (mut kv, report) = recover_store(&mut m).unwrap();
        assert_eq!(
            report.log_replay.unwrap().txns_applied,
            1,
            "committed group must be redone as a unit"
        );
        assert_eq!(kv.get(&mut m, 1).unwrap().as_deref(), Some(&b"new"[..]));
        assert_eq!(kv.get(&mut m, 2).unwrap().as_deref(), Some(&b"two"[..]));
    }

    #[test]
    fn oversized_group_reports_log_full_and_stays_clean() {
        let mut m = mem();
        let mut kv = fresh(&mut m);
        kv.put(&mut m, 1, b"keep").unwrap();
        // Enough distinct single-block puts to overflow a 32-block log
        // (each fresh key adds an entry record + a holder record).
        let ops: Vec<(u64, Option<Vec<u8>>)> =
            (100..140u64).map(|k| (k, Some(vec![k as u8]))).collect();
        assert_eq!(kv.apply_group(&mut m, &ops).unwrap_err(), KvError::LogFull);
        // Nothing logged or applied: the store still works and holds
        // exactly the pre-group state.
        assert_eq!(kv.scan(&mut m).unwrap(), vec![(1, b"keep".to_vec())]);
        kv.put(&mut m, 2, b"after").unwrap();
        assert_eq!(kv.get(&mut m, 2).unwrap().as_deref(), Some(&b"after"[..]));
    }

    #[test]
    fn single_oversized_mutation_reports_group_too_large() {
        let mut m = mem();
        let mut kv = fresh(&mut m);
        kv.put(&mut m, 1, b"keep").unwrap();
        let seq_before = kv.next_seq();
        // A single mutation cannot overflow through the public API
        // (max_value_bytes is exactly tight against append_txn's
        // capacity check), so shrink the log under the store to model
        // a deployment whose WAL budget is smaller than its value
        // budget. 4 blocks cannot hold even an empty-value put
        // (entry + holder records = 2 writes = 5 log blocks).
        let sb = m.read(kv.superblock()).unwrap();
        let log_base = PhysAddr(read_u64(&sb, SB_LOG_BASE));
        let full_log = std::mem::replace(&mut kv.log, RedoLog::new(log_base, 4));
        let one = vec![(200u64, Some(Vec::new()))];
        assert_eq!(
            kv.apply_group(&mut m, &one).unwrap_err(),
            KvError::GroupTooLarge,
            "a singleton overflow is not retryable"
        );
        // A multi-mutation overflow stays the retryable LogFull — the
        // splitter relies on the distinction.
        let two = vec![(200u64, Some(Vec::new())), (201u64, Some(Vec::new()))];
        assert_eq!(kv.apply_group(&mut m, &two).unwrap_err(), KvError::LogFull);
        // Neither failure leaked state: no sequence number burned, no
        // group counted, and the store serves cleanly once the real
        // log is back (failed groups leak only staged heap blocks).
        assert_eq!(kv.next_seq(), seq_before);
        assert_eq!(kv.stats().group_commits, 0);
        kv.log = full_log;
        assert_eq!(kv.scan(&mut m).unwrap(), vec![(1, b"keep".to_vec())]);
        kv.put(&mut m, 2, b"after").unwrap();
        assert_eq!(kv.get(&mut m, 2).unwrap().as_deref(), Some(&b"after"[..]));
    }

    #[test]
    fn group_commit_emits_one_group_event() {
        use std::io::Write;
        use std::sync::{Arc, Mutex};
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut m = mem();
        let mut kv = fresh(&mut m);
        let buf = Arc::new(Mutex::new(Vec::new()));
        kv.set_event_sink(EventSink::shared(Box::new(SharedBuf(buf.clone()))));
        kv.apply_group(
            &mut m,
            &[(1, Some(b"x".to_vec())), (2, Some(b"y".to_vec()))],
        )
        .unwrap();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        assert_eq!(
            text.matches("\"event\":\"kv_group_commit\"").count(),
            1,
            "one group event per flush:\n{text}"
        );
        assert!(text.contains("\"ops\":2"));
        // The per-op kv_put events are not emitted on the group path;
        // the group event is the trace record.
        assert!(!text.contains("\"event\":\"kv_put\""));
    }
}
