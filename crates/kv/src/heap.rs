//! A miniature PMDK (`libpmemobj`) substitute.
//!
//! The paper builds its microbenchmarks on Intel PMDK; this module
//! provides the equivalent substrate over the simulated secure memory:
//! a block-granular persistent heap in the persistent region with
//!
//! * a **header** (magic, allocation cursor, root pointer),
//! * a fixed **redo-log** area giving crash-atomic multi-block
//!   transactions (log → commit flag → apply → clear), and
//! * a bump-allocated **data area**.
//!
//! Every mutation follows the PMDK discipline: store, `clwb`, `sfence`
//! — which the simulator models as [`SecureMemory::persist`] — so the
//! full Triad-NVM metadata machinery is exercised on every step.
//!
//! ## Allocation crash-safety
//!
//! [`PersistentHeap::alloc_blocks`] persists the advanced cursor
//! *before* returning, so an address is only ever handed out once:
//! a crash can never lead to double-allocation. The converse hazard —
//! a crash after the cursor persist but before the caller persists any
//! payload — at worst *leaks* the allocated blocks (the bump cursor
//! stays advanced, nothing points at the blocks, and they are never
//! reused, so they still read as zeros). That is the documented,
//! regression-pinned behavior: leak-on-crash, never reuse-on-crash.
//!
//! ## Concurrent callers and allocation slots
//!
//! The heap has a **single-allocator discipline**: the cursor is one
//! shared word with no CAS, so raw [`PersistentHeap::alloc_blocks`]
//! is only sound when each call runs as one atomic step of a single
//! driver (the `triad-recov` interleaver) or from a single thread.
//! Concurrent *recovering* callers additionally need to know whether
//! an allocation they were making when they crashed took effect; raw
//! `alloc_blocks` cannot tell them (the leak-on-crash hazard above).
//!
//! For that, the heap offers per-thread **allocation slots**
//! ([`PersistentHeap::register_alloc_slots`], enforced by typed
//! errors, not silent corruption): [`PersistentHeap::alloc_blocks_for`]
//! writes a checksummed marker (slot, seq, addr, blocks) durably
//! *before* bumping the cursor, so a re-executed call with the same
//! `(slot, seq)` returns the same address instead of leaking —
//! detectable allocation. A torn cursor bump (marker durable, bump
//! lost) is completed by [`PersistentHeap::open`], which replays slot
//! markers exactly like the redo log.

use std::error::Error;
use std::fmt;

use triad_core::{SecureMemory, SecureMemoryError};
use triad_crypto::SipHash24;
use triad_sim::{PhysAddr, BLOCK_BYTES};

/// Errors of the persistent heap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapError {
    /// The underlying secure memory failed (tampering, crash, …).
    Memory(SecureMemoryError),
    /// `open` found no formatted heap.
    NotFormatted,
    /// The data area is exhausted.
    OutOfSpace,
    /// A transaction exceeded the redo-log capacity.
    LogFull,
    /// `register_alloc_slots` was called on a heap that already has
    /// slots registered (registration is once per heap lifetime).
    SlotsAlreadyRegistered {
        /// How many slots are registered.
        slots: u64,
    },
    /// `alloc_blocks_for` was called before any slots were registered.
    SlotsNotRegistered,
    /// The slot index is outside the registered range.
    NoSuchAllocSlot {
        /// The rejected slot.
        slot: u64,
        /// The number of registered slots.
        slots: u64,
    },
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::Memory(e) => write!(f, "secure memory error: {e}"),
            HeapError::NotFormatted => write!(f, "no formatted heap in the persistent region"),
            HeapError::OutOfSpace => write!(f, "persistent heap is out of space"),
            HeapError::LogFull => write!(f, "transaction exceeds redo-log capacity"),
            HeapError::SlotsAlreadyRegistered { slots } => {
                write!(f, "{slots} allocation slots are already registered")
            }
            HeapError::SlotsNotRegistered => {
                write!(
                    f,
                    "no allocation slots registered; call register_alloc_slots"
                )
            }
            HeapError::NoSuchAllocSlot { slot, slots } => {
                write!(
                    f,
                    "allocation slot {slot} out of range ({slots} registered)"
                )
            }
        }
    }
}

impl Error for HeapError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HeapError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SecureMemoryError> for HeapError {
    fn from(e: SecureMemoryError) -> Self {
        HeapError::Memory(e)
    }
}

/// Shorthand for heap results.
pub type Result<T> = std::result::Result<T, HeapError>;

/// Log capacity in entries (each entry = 2 blocks: target + payload).
pub const LOG_ENTRIES: usize = 16;

/// A persistent heap living in the secure memory's persistent region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistentHeap {
    base: PhysAddr,
    len_bytes: u64,
}

const HDR_MAGIC: usize = 0;
const HDR_CURSOR: usize = 8;
const HDR_ROOT: usize = 16;
const HDR_COMMIT: usize = 24;
const HDR_LOG_LEN: usize = 32;
const HDR_SLOT_BASE: usize = 40;
const HDR_SLOTS: usize = 48;

/// Slot-marker block layout (one 64 B block per registered slot).
const MARK_SEQ: usize = 0;
const MARK_ADDR: usize = 8;
const MARK_BLOCKS: usize = 16;
const MARK_CRC: usize = 24;

/// Fixed SipHash-2-4 key for slot-marker checksums (not secret:
/// torn-write detection only, same idiom as the KV WAL framing).
fn marker_hash() -> SipHash24 {
    SipHash24::new(*b"triad-recovalloc")
}

fn marker_checksum(slot: u64, seq: u64, addr: u64, blocks: u64) -> u64 {
    marker_hash().hash_words(&[slot, seq, addr, blocks])
}

/// Little-endian u64 at `off` of a block buffer.
fn read_u64(buf: &[u8; BLOCK_BYTES], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

impl PersistentHeap {
    fn header_addr(&self) -> PhysAddr {
        self.base
    }

    fn log_addr(&self, entry: usize, part: usize) -> PhysAddr {
        PhysAddr(self.base.0 + 64 + (entry * 2 + part) as u64 * 64)
    }

    fn data_base(&self) -> PhysAddr {
        PhysAddr(self.base.0 + 64 + (LOG_ENTRIES as u64 * 2) * 64)
    }

    /// Total allocatable data bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.len_bytes - (self.data_base().0 - self.base.0)
    }

    fn read_header(&self, mem: &mut SecureMemory) -> Result<[u8; BLOCK_BYTES]> {
        Ok(mem.read(self.header_addr())?)
    }

    fn header_u64(hdr: &[u8; BLOCK_BYTES], off: usize) -> u64 {
        read_u64(hdr, off)
    }

    fn write_header_u64(&self, mem: &mut SecureMemory, off: usize, value: u64) -> Result<()> {
        mem.write(
            PhysAddr(self.header_addr().0 + off as u64),
            &value.to_le_bytes(),
        )?;
        mem.persist(self.header_addr())?;
        Ok(())
    }

    /// Formats a fresh heap over the whole persistent region of `mem`.
    ///
    /// # Errors
    ///
    /// Propagates secure-memory errors.
    pub fn format(mem: &mut SecureMemory) -> Result<Self> {
        let region = mem.persistent_region();
        let heap = PersistentHeap {
            base: region.start(),
            len_bytes: region.len_bytes(),
        };
        let mut hdr = [0u8; BLOCK_BYTES];
        hdr[HDR_MAGIC..HDR_MAGIC + 8].copy_from_slice(&heap_magic().to_le_bytes());
        mem.write(heap.header_addr(), &hdr)?;
        mem.persist(heap.header_addr())?;
        Ok(heap)
    }

    /// Opens an existing heap, replaying a committed-but-unapplied
    /// transaction if the crash hit between commit and apply.
    ///
    /// # Errors
    ///
    /// [`HeapError::NotFormatted`] when the magic is absent.
    pub fn open(mem: &mut SecureMemory) -> Result<Self> {
        let region = mem.persistent_region();
        let heap = PersistentHeap {
            base: region.start(),
            len_bytes: region.len_bytes(),
        };
        let hdr = heap.read_header(mem)?;
        if Self::header_u64(&hdr, HDR_MAGIC) != heap_magic() {
            return Err(HeapError::NotFormatted);
        }
        if Self::header_u64(&hdr, HDR_COMMIT) == 1 {
            // Redo: the log is complete; apply it (idempotent).
            let len = Self::header_u64(&hdr, HDR_LOG_LEN) as usize;
            for i in 0..len.min(LOG_ENTRIES) {
                let meta = mem.read(heap.log_addr(i, 0))?;
                let target = PhysAddr(read_u64(&meta, 0));
                let payload = mem.read(heap.log_addr(i, 1))?;
                mem.write(target, &payload)?;
                mem.persist(target)?;
            }
            heap.write_header_u64(mem, HDR_COMMIT, 0)?;
        }
        // Replay a torn slot allocation: a marker pointing exactly at
        // the current cursor means `alloc_blocks_for` persisted the
        // marker but crashed before the bump — complete it (idempotent,
        // same discipline as the redo log above). At most one marker
        // can match: the cursor has moved past every completed one.
        let hdr = heap.read_header(mem)?;
        let nslots = Self::header_u64(&hdr, HDR_SLOTS);
        if nslots != 0 {
            let slot_base = Self::header_u64(&hdr, HDR_SLOT_BASE);
            let mut cursor = Self::header_u64(&hdr, HDR_CURSOR);
            for slot in 0..nslots {
                let marker = mem.read(PhysAddr(slot_base + slot * 64))?;
                let (seq, addr, blocks) = (
                    read_u64(&marker, MARK_SEQ),
                    read_u64(&marker, MARK_ADDR),
                    read_u64(&marker, MARK_BLOCKS),
                );
                if read_u64(&marker, MARK_CRC) == marker_checksum(slot, seq, addr, blocks)
                    && addr == heap.data_base().0 + cursor * 64
                {
                    cursor += blocks;
                    heap.write_header_u64(mem, HDR_CURSOR, cursor)?;
                }
            }
        }
        Ok(heap)
    }

    /// Allocates `blocks` consecutive 64 B blocks, returning their base
    /// address. Allocation is durable before the call returns.
    ///
    /// **Single-allocator discipline**: the cursor is one shared word,
    /// so this raw form is only sound when each call runs as one
    /// atomic step of a single driver (or from a single thread), and
    /// a caller that crashes mid-protocol leaks the blocks (see the
    /// module docs). Concurrent logical threads that need to *detect*
    /// whether a crashed allocation took effect must use
    /// [`PersistentHeap::alloc_blocks_for`] instead.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfSpace`] when the data area is exhausted (the
    /// bound check uses checked arithmetic, so an absurd `blocks` count
    /// cannot wrap past the capacity in release builds).
    pub fn alloc_blocks(&self, mem: &mut SecureMemory, blocks: u64) -> Result<PhysAddr> {
        let hdr = self.read_header(mem)?;
        let cursor = Self::header_u64(&hdr, HDR_CURSOR);
        let end_bytes = cursor
            .checked_add(blocks)
            .and_then(|b| b.checked_mul(64))
            .ok_or(HeapError::OutOfSpace)?;
        if end_bytes > self.capacity_bytes() {
            return Err(HeapError::OutOfSpace);
        }
        self.write_header_u64(mem, HDR_CURSOR, cursor + blocks)?;
        Ok(PhysAddr(self.data_base().0 + cursor * 64))
    }

    /// Registers `slots` per-thread allocation slots (one marker block
    /// each), returning the marker area's base. Registration happens
    /// once per heap lifetime — the slot count is the typed guard that
    /// replaces silent cursor corruption for concurrent callers.
    ///
    /// A crash inside registration at worst leaks the marker blocks
    /// (the commit point is the slot-count header write, last).
    ///
    /// # Errors
    ///
    /// [`HeapError::SlotsAlreadyRegistered`] on re-registration;
    /// [`HeapError::OutOfSpace`] when the marker area does not fit.
    pub fn register_alloc_slots(&self, mem: &mut SecureMemory, slots: u64) -> Result<PhysAddr> {
        let hdr = self.read_header(mem)?;
        let existing = Self::header_u64(&hdr, HDR_SLOTS);
        if existing != 0 {
            return Err(HeapError::SlotsAlreadyRegistered { slots: existing });
        }
        let base = self.alloc_blocks(mem, slots)?;
        self.write_header_u64(mem, HDR_SLOT_BASE, base.0)?;
        // Commit point: the count makes the registration visible.
        self.write_header_u64(mem, HDR_SLOTS, slots)?;
        Ok(base)
    }

    /// The number of registered allocation slots (0 = none).
    ///
    /// # Errors
    ///
    /// Propagates secure-memory errors.
    pub fn alloc_slots(&self, mem: &mut SecureMemory) -> Result<u64> {
        Ok(Self::header_u64(&self.read_header(mem)?, HDR_SLOTS))
    }

    /// Detectable allocation for concurrent recovering callers:
    /// allocates `blocks` like [`PersistentHeap::alloc_blocks`], but
    /// records a checksummed `(slot, seq, addr, blocks)` marker
    /// durably *before* the cursor moves. Re-executing the call with
    /// the same `(slot, seq, blocks)` — the recovery replay of a
    /// crashed thread — returns the **same** address instead of
    /// allocating again, so an allocation is applied exactly once
    /// across crash and re-execution.
    ///
    /// The caller contract is that `seq` is strictly increasing per
    /// slot (the per-thread operation sequence number); a stale marker
    /// is simply overwritten by the next fresh allocation.
    ///
    /// # Errors
    ///
    /// [`HeapError::SlotsNotRegistered`] /
    /// [`HeapError::NoSuchAllocSlot`] for slot misuse,
    /// [`HeapError::OutOfSpace`] as for `alloc_blocks`.
    pub fn alloc_blocks_for(
        &self,
        mem: &mut SecureMemory,
        blocks: u64,
        slot: u64,
        seq: u64,
    ) -> Result<PhysAddr> {
        let hdr = self.read_header(mem)?;
        let nslots = Self::header_u64(&hdr, HDR_SLOTS);
        if nslots == 0 {
            return Err(HeapError::SlotsNotRegistered);
        }
        if slot >= nslots {
            return Err(HeapError::NoSuchAllocSlot {
                slot,
                slots: nslots,
            });
        }
        let maddr = PhysAddr(Self::header_u64(&hdr, HDR_SLOT_BASE) + slot * 64);
        let cursor = Self::header_u64(&hdr, HDR_CURSOR);
        let marker = mem.read(maddr)?;
        let (mseq, addr, mblocks) = (
            read_u64(&marker, MARK_SEQ),
            read_u64(&marker, MARK_ADDR),
            read_u64(&marker, MARK_BLOCKS),
        );
        if read_u64(&marker, MARK_CRC) == marker_checksum(slot, mseq, addr, mblocks)
            && mseq == seq
            && mblocks == blocks
        {
            // Replay of an allocation that already became durable.
            // (A torn cursor bump was completed by `open`; completing
            // it here too keeps the call self-contained.)
            if addr == self.data_base().0 + cursor * 64 {
                self.write_header_u64(mem, HDR_CURSOR, cursor + blocks)?;
            }
            return Ok(PhysAddr(addr));
        }
        let end_bytes = cursor
            .checked_add(blocks)
            .and_then(|b| b.checked_mul(64))
            .ok_or(HeapError::OutOfSpace)?;
        if end_bytes > self.capacity_bytes() {
            return Err(HeapError::OutOfSpace);
        }
        let fresh = self.data_base().0 + cursor * 64;
        // 1. Marker first: durable intent, so a re-execution after a
        //    crash anywhere past this point adopts the same address.
        let mut m = [0u8; BLOCK_BYTES];
        m[MARK_SEQ..MARK_SEQ + 8].copy_from_slice(&seq.to_le_bytes());
        m[MARK_ADDR..MARK_ADDR + 8].copy_from_slice(&fresh.to_le_bytes());
        m[MARK_BLOCKS..MARK_BLOCKS + 8].copy_from_slice(&blocks.to_le_bytes());
        m[MARK_CRC..MARK_CRC + 8]
            .copy_from_slice(&marker_checksum(slot, seq, fresh, blocks).to_le_bytes());
        mem.write(maddr, &m)?;
        mem.persist(maddr)?;
        // 2. Cursor bump (torn bumps are replayed from the marker).
        self.write_header_u64(mem, HDR_CURSOR, cursor + blocks)?;
        Ok(PhysAddr(fresh))
    }

    /// Reads the root-object pointer (0 = unset).
    pub fn root(&self, mem: &mut SecureMemory) -> Result<u64> {
        Ok(Self::header_u64(&self.read_header(mem)?, HDR_ROOT))
    }

    /// Durably sets the root-object pointer.
    pub fn set_root(&self, mem: &mut SecureMemory, root: u64) -> Result<()> {
        self.write_header_u64(mem, HDR_ROOT, root)
    }

    /// Runs a crash-atomic transaction: all `writes` (full 64 B blocks)
    /// become durable together or not at all.
    ///
    /// # Errors
    ///
    /// [`HeapError::LogFull`] when more than [`LOG_ENTRIES`] blocks are
    /// written.
    pub fn commit(
        &self,
        mem: &mut SecureMemory,
        writes: &[(PhysAddr, [u8; BLOCK_BYTES])],
    ) -> Result<()> {
        if writes.len() > LOG_ENTRIES {
            return Err(HeapError::LogFull);
        }
        // 1. Write the redo log.
        for (i, (target, payload)) in writes.iter().enumerate() {
            let mut meta = [0u8; BLOCK_BYTES];
            meta[..8].copy_from_slice(&target.0.to_le_bytes());
            mem.write(self.log_addr(i, 0), &meta)?;
            mem.persist(self.log_addr(i, 0))?;
            mem.write(self.log_addr(i, 1), payload)?;
            mem.persist(self.log_addr(i, 1))?;
        }
        self.write_header_u64(mem, HDR_LOG_LEN, writes.len() as u64)?;
        // 2. Commit point.
        self.write_header_u64(mem, HDR_COMMIT, 1)?;
        // 3. Apply in place.
        for (target, payload) in writes {
            mem.write(*target, payload)?;
            mem.persist(*target)?;
        }
        // 4. Clear.
        self.write_header_u64(mem, HDR_COMMIT, 0)?;
        Ok(())
    }
}

fn heap_magic() -> u64 {
    u64::from_le_bytes(*b"TRIADPMN")
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_core::{PersistScheme, SecureMemoryBuilder};

    fn mem() -> SecureMemory {
        SecureMemoryBuilder::new()
            .scheme(PersistScheme::triad_nvm(2))
            .build()
            .unwrap()
    }

    #[test]
    fn format_then_open() {
        let mut m = mem();
        let h = PersistentHeap::format(&mut m).unwrap();
        let h2 = PersistentHeap::open(&mut m).unwrap();
        assert_eq!(h, h2);
    }

    #[test]
    fn open_unformatted_fails() {
        let mut m = mem();
        assert_eq!(
            PersistentHeap::open(&mut m).unwrap_err(),
            HeapError::NotFormatted
        );
    }

    #[test]
    fn alloc_advances_and_is_durable() {
        let mut m = mem();
        let h = PersistentHeap::format(&mut m).unwrap();
        let a = h.alloc_blocks(&mut m, 2).unwrap();
        let b = h.alloc_blocks(&mut m, 1).unwrap();
        assert_eq!(b.0, a.0 + 128);
        m.crash();
        m.recover().unwrap();
        let h = PersistentHeap::open(&mut m).unwrap();
        let c = h.alloc_blocks(&mut m, 1).unwrap();
        assert_eq!(c.0, b.0 + 64, "cursor must survive the crash");
    }

    #[test]
    fn out_of_space_detected() {
        let mut m = mem();
        let h = PersistentHeap::format(&mut m).unwrap();
        let too_many = h.capacity_bytes() / 64 + 1;
        assert_eq!(
            h.alloc_blocks(&mut m, too_many).unwrap_err(),
            HeapError::OutOfSpace
        );
    }

    #[test]
    fn absurd_alloc_cannot_overflow_the_bound_check() {
        // Regression: `(cursor + blocks) * 64` wrapped in release builds
        // for huge counts, letting the bound check pass and the cursor
        // advance past the data area. Checked arithmetic must reject it.
        let mut m = mem();
        let h = PersistentHeap::format(&mut m).unwrap();
        for blocks in [u64::MAX, u64::MAX / 2, u64::MAX / 64 + 1] {
            assert_eq!(
                h.alloc_blocks(&mut m, blocks).unwrap_err(),
                HeapError::OutOfSpace
            );
        }
        // The cursor must be untouched by the rejected calls.
        let a = h.alloc_blocks(&mut m, 1).unwrap();
        assert_eq!(a, h.data_base());
    }

    #[test]
    fn transaction_applies_all_writes() {
        let mut m = mem();
        let h = PersistentHeap::format(&mut m).unwrap();
        let a = h.alloc_blocks(&mut m, 2).unwrap();
        let b = PhysAddr(a.0 + 64);
        h.commit(&mut m, &[(a, [1; 64]), (b, [2; 64])]).unwrap();
        assert_eq!(m.read(a).unwrap(), [1; 64]);
        assert_eq!(m.read(b).unwrap(), [2; 64]);
    }

    #[test]
    fn log_overflow_rejected() {
        let mut m = mem();
        let h = PersistentHeap::format(&mut m).unwrap();
        let a = h.alloc_blocks(&mut m, LOG_ENTRIES as u64 + 1).unwrap();
        let writes: Vec<_> = (0..LOG_ENTRIES as u64 + 1)
            .map(|i| (PhysAddr(a.0 + i * 64), [3u8; 64]))
            .collect();
        assert_eq!(h.commit(&mut m, &writes).unwrap_err(), HeapError::LogFull);
    }

    #[test]
    fn committed_transaction_survives_crash_between_commit_and_apply() {
        // Crash-atomicity at the heap level composes with the engine's
        // metadata persistence: after the commit flag is durable, a
        // crash anywhere must still produce the new state at reopen.
        let mut m = mem();
        let h = PersistentHeap::format(&mut m).unwrap();
        let a = h.alloc_blocks(&mut m, 2).unwrap();
        let b = PhysAddr(a.0 + 64);
        h.commit(&mut m, &[(a, [1; 64]), (b, [1; 64])]).unwrap();
        // Second tx: stop right after the commit flag persists by
        // simulating the crash through a full commit followed by
        // rewinding the applied blocks is not possible from outside —
        // instead drive the log manually.
        let writes = [(a, [9u8; 64]), (b, [9u8; 64])];
        for (i, (target, payload)) in writes.iter().enumerate() {
            let mut meta = [0u8; 64];
            meta[..8].copy_from_slice(&target.0.to_le_bytes());
            m.write(h.log_addr(i, 0), &meta).unwrap();
            m.persist(h.log_addr(i, 0)).unwrap();
            m.write(h.log_addr(i, 1), payload).unwrap();
            m.persist(h.log_addr(i, 1)).unwrap();
        }
        h.write_header_u64(&mut m, HDR_LOG_LEN, 2).unwrap();
        h.write_header_u64(&mut m, HDR_COMMIT, 1).unwrap();
        // CRASH before applying.
        m.crash();
        m.recover().unwrap();
        let h = PersistentHeap::open(&mut m).unwrap();
        let _ = h;
        assert_eq!(m.read(a).unwrap(), [9; 64], "redo log must be replayed");
        assert_eq!(m.read(b).unwrap(), [9; 64]);
    }

    #[test]
    fn uncommitted_transaction_is_discarded() {
        let mut m = mem();
        let h = PersistentHeap::format(&mut m).unwrap();
        let a = h.alloc_blocks(&mut m, 1).unwrap();
        h.commit(&mut m, &[(a, [1; 64])]).unwrap();
        // Write log entries but never set the commit flag.
        let mut meta = [0u8; 64];
        meta[..8].copy_from_slice(&a.0.to_le_bytes());
        m.write(h.log_addr(0, 0), &meta).unwrap();
        m.persist(h.log_addr(0, 0)).unwrap();
        m.write(h.log_addr(0, 1), &[7u8; 64]).unwrap();
        m.persist(h.log_addr(0, 1)).unwrap();
        m.crash();
        m.recover().unwrap();
        PersistentHeap::open(&mut m).unwrap();
        assert_eq!(m.read(a).unwrap(), [1; 64], "old value must remain");
    }

    #[test]
    fn root_pointer_round_trip() {
        let mut m = mem();
        let h = PersistentHeap::format(&mut m).unwrap();
        assert_eq!(h.root(&mut m).unwrap(), 0);
        h.set_root(&mut m, 0xFEED).unwrap();
        m.crash();
        m.recover().unwrap();
        let h = PersistentHeap::open(&mut m).unwrap();
        assert_eq!(h.root(&mut m).unwrap(), 0xFEED);
    }

    // ----- allocation crash-safety pins (issue-4 satellite audit) -----

    #[test]
    fn crash_during_cursor_persist_loses_the_allocation_cleanly() {
        // The crash fires *instead of* the cursor write-back: the
        // allocation never becomes durable, the caller sees the crash,
        // and after recovery the same address is handed out again — no
        // leak, no double-allocation, because the failed call never
        // returned an address.
        let mut m = mem();
        let h = PersistentHeap::format(&mut m).unwrap();
        let a = h.alloc_blocks(&mut m, 1).unwrap();
        m.inject_crash_after_persists(0);
        assert_eq!(
            h.alloc_blocks(&mut m, 1).unwrap_err(),
            HeapError::Memory(SecureMemoryError::NeedsRecovery)
        );
        m.recover().unwrap();
        let h = PersistentHeap::open(&mut m).unwrap();
        let b = h.alloc_blocks(&mut m, 1).unwrap();
        assert_eq!(b.0, a.0 + 64, "lost allocation must be reissued");
    }

    #[test]
    fn crash_between_cursor_persist_and_payload_persist_never_reuses() {
        // The documented hazard: the cursor persist succeeded (the
        // allocation is durable) but the caller crashed before
        // persisting any payload. The blocks are leaked — the next
        // allocation must NOT hand them out again — and they still read
        // as zeros (fresh NVM, bump allocator never reuses).
        let mut m = mem();
        let h = PersistentHeap::format(&mut m).unwrap();
        // Boundary 0 = the cursor write-back of this alloc; boundary 1
        // = the payload persist below. Let the first through, crash on
        // the second.
        m.inject_crash_after_persists(1);
        let a = h.alloc_blocks(&mut m, 1).unwrap();
        m.write(a, &[0xAB; 64]).unwrap();
        assert_eq!(
            m.persist(a).unwrap_err(),
            SecureMemoryError::NeedsRecovery,
            "payload persist must hit the injected crash"
        );
        m.recover().unwrap();
        let h = PersistentHeap::open(&mut m).unwrap();
        let b = h.alloc_blocks(&mut m, 1).unwrap();
        assert_eq!(b.0, a.0 + 64, "leaked block must never be reallocated");
        assert_eq!(m.read(a).unwrap(), [0; 64], "leaked block reads as zeros");
    }

    // ----- allocation slots (issue-9 satellite: concurrent callers) -----

    #[test]
    fn slot_registration_is_once_and_typed() {
        let mut m = mem();
        let h = PersistentHeap::format(&mut m).unwrap();
        assert_eq!(h.alloc_slots(&mut m).unwrap(), 0);
        assert_eq!(
            h.alloc_blocks_for(&mut m, 1, 0, 1).unwrap_err(),
            HeapError::SlotsNotRegistered
        );
        h.register_alloc_slots(&mut m, 3).unwrap();
        assert_eq!(h.alloc_slots(&mut m).unwrap(), 3);
        assert_eq!(
            h.register_alloc_slots(&mut m, 2).unwrap_err(),
            HeapError::SlotsAlreadyRegistered { slots: 3 }
        );
        assert_eq!(
            h.alloc_blocks_for(&mut m, 1, 3, 1).unwrap_err(),
            HeapError::NoSuchAllocSlot { slot: 3, slots: 3 }
        );
    }

    #[test]
    fn slot_alloc_replay_returns_the_same_address_exactly_once() {
        let mut m = mem();
        let h = PersistentHeap::format(&mut m).unwrap();
        h.register_alloc_slots(&mut m, 2).unwrap();
        let a = h.alloc_blocks_for(&mut m, 2, 0, 1).unwrap();
        // Replay with the same (slot, seq, blocks): same address, and
        // the cursor must not advance again.
        let a2 = h.alloc_blocks_for(&mut m, 2, 0, 1).unwrap();
        assert_eq!(a, a2);
        let b = h.alloc_blocks_for(&mut m, 1, 0, 2).unwrap();
        assert_eq!(b.0, a.0 + 128, "replay must not consume space");
        // Another slot's allocations are independent.
        let c = h.alloc_blocks_for(&mut m, 1, 1, 1).unwrap();
        assert_eq!(c.0, b.0 + 64);
    }

    #[test]
    fn crash_before_the_marker_persist_reissues_cleanly() {
        let mut m = mem();
        let h = PersistentHeap::format(&mut m).unwrap();
        h.register_alloc_slots(&mut m, 1).unwrap();
        let a = h.alloc_blocks_for(&mut m, 1, 0, 1).unwrap();
        // Boundary 0 = the marker persist of the next call: the intent
        // never becomes durable, so the re-executed call is a fresh
        // allocation at the same (unmoved) cursor.
        m.inject_crash_after_persists(0);
        assert_eq!(
            h.alloc_blocks_for(&mut m, 1, 0, 2).unwrap_err(),
            HeapError::Memory(SecureMemoryError::NeedsRecovery)
        );
        m.recover().unwrap();
        let h = PersistentHeap::open(&mut m).unwrap();
        let b = h.alloc_blocks_for(&mut m, 1, 0, 2).unwrap();
        assert_eq!(b.0, a.0 + 64, "no space may leak");
    }

    #[test]
    fn torn_cursor_bump_is_completed_and_the_replay_adopts_the_marker() {
        let mut m = mem();
        let h = PersistentHeap::format(&mut m).unwrap();
        h.register_alloc_slots(&mut m, 1).unwrap();
        let a = h.alloc_blocks_for(&mut m, 1, 0, 1).unwrap();
        // Boundary 0 = marker persist (allowed through), boundary 1 =
        // the cursor bump: marker durable, bump torn away.
        m.inject_crash_after_persists(1);
        assert_eq!(
            h.alloc_blocks_for(&mut m, 2, 0, 2).unwrap_err(),
            HeapError::Memory(SecureMemoryError::NeedsRecovery)
        );
        m.recover().unwrap();
        let h = PersistentHeap::open(&mut m).unwrap();
        // The replay with the same (slot, seq) adopts the marker: the
        // same address, applied exactly once.
        let b = h.alloc_blocks_for(&mut m, 2, 0, 2).unwrap();
        assert_eq!(b.0, a.0 + 64, "marker address must be adopted");
        // open() completed the bump, so a fresh allocation does not
        // overlap the adopted one.
        let c = h.alloc_blocks_for(&mut m, 1, 0, 3).unwrap();
        assert_eq!(c.0, b.0 + 128, "completed bump must not be lost");
    }

    #[test]
    fn completed_slot_alloc_survives_a_crash_and_still_replays() {
        let mut m = mem();
        let h = PersistentHeap::format(&mut m).unwrap();
        h.register_alloc_slots(&mut m, 1).unwrap();
        let a = h.alloc_blocks_for(&mut m, 1, 0, 7).unwrap();
        m.crash();
        m.recover().unwrap();
        let h = PersistentHeap::open(&mut m).unwrap();
        assert_eq!(h.alloc_blocks_for(&mut m, 1, 0, 7).unwrap(), a);
        let b = h.alloc_blocks_for(&mut m, 1, 0, 8).unwrap();
        assert_eq!(b.0, a.0 + 64);
    }

    #[test]
    fn crash_mid_wpq_during_cursor_persist_keeps_the_cursor_atomic() {
        // A crash in the middle of the cursor's own atomic persist
        // (between WPQ copies) is replayed from the persistent
        // registers at recovery: the cursor update is all-or-nothing,
        // so the post-recovery cursor is either the old or the new
        // value — never a torn mix — and a reissued allocation never
        // overlaps one that a *completed* call returned.
        let mut m = mem();
        let h = PersistentHeap::format(&mut m).unwrap();
        let a = h.alloc_blocks(&mut m, 1).unwrap();
        m.inject_crash_after_wpq_writes(1);
        let crashed = h.alloc_blocks(&mut m, 1);
        assert_eq!(
            crashed.unwrap_err(),
            HeapError::Memory(SecureMemoryError::NeedsRecovery)
        );
        m.recover().unwrap();
        let h = PersistentHeap::open(&mut m).unwrap();
        let b = h.alloc_blocks(&mut m, 1).unwrap();
        assert!(
            b.0 == a.0 + 64 || b.0 == a.0 + 128,
            "cursor must be old-or-new, got base {:#x} vs first alloc {:#x}",
            b.0,
            a.0
        );
    }
}

#[cfg(test)]
mod error_surface {
    use super::*;

    #[test]
    fn heap_errors_display_and_chain() {
        use std::error::Error as _;
        let e = HeapError::OutOfSpace;
        assert!(e.to_string().contains("out of space"));
        assert!(e.source().is_none());
        let inner = triad_core::SecureMemoryError::NeedsRecovery;
        let wrapped = HeapError::from(inner.clone());
        assert!(wrapped.to_string().contains("secure memory error"));
        assert!(wrapped.source().is_some());
        assert_eq!(
            HeapError::LogFull.to_string(),
            "transaction exceeds redo-log capacity"
        );
        assert!(HeapError::NotFormatted.to_string().contains("formatted"));
        assert!(HeapError::SlotsAlreadyRegistered { slots: 4 }
            .to_string()
            .contains('4'));
        assert!(HeapError::SlotsNotRegistered
            .to_string()
            .contains("register_alloc_slots"));
        let e = HeapError::NoSuchAllocSlot { slot: 9, slots: 2 };
        assert!(e.to_string().contains('9') && e.to_string().contains('2'));
        assert!(e.source().is_none());
        let _ = inner;
    }

    #[test]
    fn heap_capacity_accounts_for_header_and_log() {
        let mut m = triad_core::SecureMemoryBuilder::new().build().unwrap();
        let h = PersistentHeap::format(&mut m).unwrap();
        let region = m.persistent_region().len_bytes();
        let overhead = 64 * (1 + 2 * LOG_ENTRIES as u64);
        assert_eq!(h.capacity_bytes(), region - overhead);
    }
}
