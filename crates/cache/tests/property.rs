//! Model-based property tests: the set-associative cache against a
//! simple per-set reference model.

use proptest::prelude::*;
use std::collections::HashMap;
use triad_cache::{Cache, Replacement};
use triad_sim::config::CacheConfig;
use triad_sim::BlockAddr;

#[derive(Debug, Clone)]
enum Op {
    Access { addr: u64, write: bool },
    Flush { addr: u64 },
    Invalidate { addr: u64 },
}

fn op_strategy(addr_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0..addr_space, any::<bool>()).prop_map(|(addr, write)| Op::Access { addr, write }),
        1 => (0..addr_space).prop_map(|addr| Op::Flush { addr }),
        1 => (0..addr_space).prop_map(|addr| Op::Invalidate { addr }),
    ]
}

/// Reference model: per-set LRU list of (tag, dirty).
#[derive(Debug, Default, Clone)]
struct ModelSet {
    /// Most-recent last.
    lines: Vec<(u64, bool)>,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn lru_cache_matches_reference_model(
        ops in prop::collection::vec(op_strategy(64), 1..400),
        ways in 1usize..4,
    ) {
        let sets = 4usize;
        let mut cache = Cache::new(
            "m",
            CacheConfig::new(sets * ways * 64, ways, 1),
            Replacement::Lru,
        );
        let mut model: HashMap<usize, ModelSet> = HashMap::new();

        for op in ops {
            match op {
                Op::Access { addr, write } => {
                    let out = cache.access(BlockAddr(addr), write);
                    let set = model.entry(addr as usize % sets).or_default();
                    let pos = set.lines.iter().position(|(t, _)| *t == addr);
                    // Hit/miss agreement.
                    prop_assert_eq!(out.hit, pos.is_some(), "addr {}", addr);
                    match pos {
                        Some(i) => {
                            let (t, d) = set.lines.remove(i);
                            set.lines.push((t, d || write));
                            prop_assert_eq!(out.victim, None);
                        }
                        None => {
                            if set.lines.len() == ways {
                                let (vt, vd) = set.lines.remove(0);
                                let v = out.victim.expect("model expects a victim");
                                prop_assert_eq!(v.addr, BlockAddr(vt));
                                prop_assert_eq!(v.dirty, vd);
                            } else {
                                prop_assert_eq!(out.victim, None);
                            }
                            set.lines.push((addr, write));
                        }
                    }
                }
                Op::Flush { addr } => {
                    let flushed = cache.flush(BlockAddr(addr));
                    let set = model.entry(addr as usize % sets).or_default();
                    let model_flushed = set
                        .lines
                        .iter_mut()
                        .find(|(t, d)| *t == addr && *d)
                        .map(|entry| {
                            entry.1 = false;
                        })
                        .is_some();
                    prop_assert_eq!(flushed, model_flushed);
                }
                Op::Invalidate { addr } => {
                    let inv = cache.invalidate(BlockAddr(addr));
                    let set = model.entry(addr as usize % sets).or_default();
                    let pos = set.lines.iter().position(|(t, _)| *t == addr);
                    match pos {
                        Some(i) => {
                            let (_, d) = set.lines.remove(i);
                            prop_assert_eq!(inv, Some(d));
                        }
                        None => prop_assert_eq!(inv, None),
                    }
                }
            }
            // Global invariants after every step.
            let model_occupancy: usize = model.values().map(|s| s.lines.len()).sum();
            prop_assert_eq!(cache.occupancy(), model_occupancy);
            let mut model_dirty: Vec<u64> = model
                .values()
                .flat_map(|s| s.lines.iter().filter(|(_, d)| *d).map(|(t, _)| *t))
                .collect();
            model_dirty.sort_unstable();
            let mut cache_dirty: Vec<u64> =
                cache.dirty_blocks().iter().map(|b| b.0).collect();
            cache_dirty.sort_unstable();
            prop_assert_eq!(cache_dirty, model_dirty);
        }
    }

    #[test]
    fn occupancy_never_exceeds_capacity(
        addrs in prop::collection::vec(0u64..10_000, 1..500),
    ) {
        let mut cache = Cache::new("c", CacheConfig::new(16 * 64, 4, 1), Replacement::Lru);
        for a in addrs {
            cache.access(BlockAddr(a), a % 3 == 0);
            prop_assert!(cache.occupancy() <= 16);
        }
    }

    #[test]
    fn every_dirty_block_was_written(
        ops in prop::collection::vec((0u64..128, any::<bool>()), 1..300),
    ) {
        let mut cache = Cache::new("d", CacheConfig::new(8 * 64, 2, 1), Replacement::Lru);
        let mut written = std::collections::HashSet::new();
        for (addr, write) in ops {
            cache.access(BlockAddr(addr), write);
            if write {
                written.insert(addr);
            }
        }
        for b in cache.dirty_blocks() {
            prop_assert!(written.contains(&b.0), "dirty block {} never written", b.0);
        }
    }
}
