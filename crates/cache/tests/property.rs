//! Model-based property tests: the set-associative cache against a
//! simple per-set reference model.

use std::collections::HashMap;
use triad_cache::{Cache, Replacement};
use triad_sim::config::CacheConfig;
use triad_sim::prop::{check, check_ops, Config};
use triad_sim::rng::SplitMix64;
use triad_sim::BlockAddr;

#[derive(Debug, Clone)]
enum Op {
    Access { addr: u64, write: bool },
    Flush { addr: u64 },
    Invalidate { addr: u64 },
}

fn gen_op(rng: &mut SplitMix64, addr_space: u64) -> Op {
    let addr = rng.gen_range(0..addr_space);
    match rng.gen_range(0..8) {
        0..=5 => Op::Access {
            addr,
            write: rng.gen_bool(0.5),
        },
        6 => Op::Flush { addr },
        _ => Op::Invalidate { addr },
    }
}

/// Reference model: per-set LRU list of (tag, dirty).
#[derive(Debug, Default, Clone)]
struct ModelSet {
    /// Most-recent last.
    lines: Vec<(u64, bool)>,
}

macro_rules! ensure {
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return Err(format!($($arg)+));
        }
    };
}

fn run_against_model(ops: &[Op], ways: usize) -> Result<(), String> {
    let sets = 4usize;
    let mut cache = Cache::new(
        "m",
        CacheConfig::new(sets * ways * 64, ways, 1),
        Replacement::Lru,
    );
    let mut model: HashMap<usize, ModelSet> = HashMap::new();

    for op in ops {
        match *op {
            Op::Access { addr, write } => {
                let out = cache.access(BlockAddr(addr), write);
                let set = model.entry(addr as usize % sets).or_default();
                let pos = set.lines.iter().position(|(t, _)| *t == addr);
                // Hit/miss agreement.
                ensure!(out.hit == pos.is_some(), "addr {addr}: hit disagreement");
                match pos {
                    Some(i) => {
                        let (t, d) = set.lines.remove(i);
                        set.lines.push((t, d || write));
                        ensure!(out.victim.is_none(), "addr {addr}: victim on a hit");
                    }
                    None => {
                        if set.lines.len() == ways {
                            let (vt, vd) = set.lines.remove(0);
                            let v = out.victim.ok_or("model expects a victim")?;
                            ensure!(v.addr == BlockAddr(vt), "victim addr {:?}", v.addr);
                            ensure!(v.dirty == vd, "victim dirty {}", v.dirty);
                        } else {
                            ensure!(out.victim.is_none(), "unexpected victim");
                        }
                        set.lines.push((addr, write));
                    }
                }
            }
            Op::Flush { addr } => {
                let flushed = cache.flush(BlockAddr(addr));
                let set = model.entry(addr as usize % sets).or_default();
                let model_flushed = set
                    .lines
                    .iter_mut()
                    .find(|(t, d)| *t == addr && *d)
                    .map(|entry| {
                        entry.1 = false;
                    })
                    .is_some();
                ensure!(flushed == model_flushed, "flush {addr} disagreement");
            }
            Op::Invalidate { addr } => {
                let inv = cache.invalidate(BlockAddr(addr));
                let set = model.entry(addr as usize % sets).or_default();
                let pos = set.lines.iter().position(|(t, _)| *t == addr);
                match pos {
                    Some(i) => {
                        let (_, d) = set.lines.remove(i);
                        ensure!(inv == Some(d), "invalidate {addr} dirty bit");
                    }
                    None => ensure!(inv.is_none(), "invalidate {addr} phantom line"),
                }
            }
        }
        // Global invariants after every step.
        let model_occupancy: usize = model.values().map(|s| s.lines.len()).sum();
        ensure!(
            cache.occupancy() == model_occupancy,
            "occupancy {} vs model {model_occupancy}",
            cache.occupancy()
        );
        let mut model_dirty: Vec<u64> = model
            .values()
            .flat_map(|s| s.lines.iter().filter(|(_, d)| *d).map(|(t, _)| *t))
            .collect();
        model_dirty.sort_unstable();
        let mut cache_dirty: Vec<u64> = cache.dirty_blocks().iter().map(|b| b.0).collect();
        cache_dirty.sort_unstable();
        ensure!(
            cache_dirty == model_dirty,
            "dirty sets diverged: {cache_dirty:?} vs {model_dirty:?}"
        );
    }
    Ok(())
}

#[test]
fn lru_cache_matches_reference_model() {
    check_ops(
        "lru_cache_matches_reference_model",
        Config::cases(64),
        |rng| {
            let len = rng.gen_range(1..400) as usize;
            (0..len).map(|_| gen_op(rng, 64)).collect::<Vec<Op>>()
        },
        |ops, params| {
            let ways = params.gen_range(1..4) as usize;
            run_against_model(ops, ways)
        },
    );
}

#[test]
fn occupancy_never_exceeds_capacity() {
    check(
        "occupancy_never_exceeds_capacity",
        Config::cases(64),
        |rng| {
            let len = rng.gen_range(1..500);
            let mut cache = Cache::new("c", CacheConfig::new(16 * 64, 4, 1), Replacement::Lru);
            for _ in 0..len {
                let a = rng.gen_range(0..10_000);
                cache.access(BlockAddr(a), a % 3 == 0);
                ensure!(cache.occupancy() <= 16, "occupancy {}", cache.occupancy());
            }
            Ok(())
        },
    );
}

#[test]
fn every_dirty_block_was_written() {
    check("every_dirty_block_was_written", Config::cases(64), |rng| {
        let len = rng.gen_range(1..300);
        let mut cache = Cache::new("d", CacheConfig::new(8 * 64, 2, 1), Replacement::Lru);
        let mut written = std::collections::HashSet::new();
        for _ in 0..len {
            let addr = rng.gen_range(0..128);
            let write = rng.gen_bool(0.5);
            cache.access(BlockAddr(addr), write);
            if write {
                written.insert(addr);
            }
        }
        for b in cache.dirty_blocks() {
            ensure!(written.contains(&b.0), "dirty block {} never written", b.0);
        }
        Ok(())
    });
}
