//! Batch-keyed metadata prefetch planning.
//!
//! When the secure engine queues a [`WriteBatch`], the full set of
//! counter blocks, MAC blocks and BMT path nodes the batch will touch
//! is known *before* the first member executes — exactly the situation
//! a trie prefetcher exploits (cf. reth's `trie-prefetch`, which warms
//! trie nodes for a queued block of transactions). The
//! [`BatchPrefetcher`] turns that queued batch into a deduplicated
//! [`PrefetchPlan`]: the distinct metadata lines the batch needs, split
//! into predicted hits (already resident somewhere on chip) and
//! predicted misses (would be fetched from NVM).
//!
//! The planner is deliberately **non-perturbing**: it probes caches
//! through [`Cache::probe`]-style callbacks without touching recency
//! state, so a planned batch executes bit-identically to the unplanned
//! scalar sequence. What batching buys — and what the plan quantifies —
//! is *overlap*: all planned fetches can be in flight together instead
//! of serialised one write at a time.
//!
//! [`WriteBatch`]: ../triad_core/batch/struct.WriteBatch.html
//! [`Cache::probe`]: crate::Cache::probe

use triad_sim::stats::{Scope, StatRegister};
use triad_sim::BlockAddr;

/// Which metadata structure a prefetch request targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PrefetchClass {
    /// A split-counter block (counter-cache resident).
    Counter,
    /// A per-block MAC line (Merkle-tree-cache resident).
    Mac,
    /// An intermediate BMT node (Merkle-tree-cache resident).
    Node,
}

/// One planned metadata line: its class, address, and whether the
/// probe found it already resident on chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedLine {
    /// Metadata class of the line.
    pub class: PrefetchClass,
    /// Block address of the line.
    pub addr: BlockAddr,
    /// `true` if already resident (no NVM fetch needed).
    pub resident: bool,
}

/// The deduplicated prefetch plan for one queued batch.
#[derive(Debug, Clone, Default)]
pub struct PrefetchPlan {
    /// Every distinct metadata line the batch will touch, in first-use
    /// order.
    pub lines: Vec<PlannedLine>,
    /// Requests dropped because an earlier member already planned the
    /// same line — the shared-ancestor redundancy the batch eliminates.
    pub dedup_saved: u64,
}

impl PrefetchPlan {
    /// Lines the probe predicted resident (no fetch needed).
    pub fn predicted_hits(&self) -> u64 {
        self.lines.iter().filter(|l| l.resident).count() as u64
    }

    /// Lines that would be fetched from NVM.
    pub fn predicted_misses(&self) -> u64 {
        self.lines.len() as u64 - self.predicted_hits()
    }
}

/// Counters for the prefetch planner.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrefetchStats {
    /// Batches planned.
    pub batches: u64,
    /// Distinct metadata lines planned across all batches.
    pub lines_planned: u64,
    /// Duplicate requests merged away by planning.
    pub dedup_saved: u64,
    /// Planned lines predicted resident on chip.
    pub predicted_hits: u64,
    /// Planned lines predicted to need an NVM fetch.
    pub predicted_misses: u64,
}

impl StatRegister for PrefetchStats {
    fn register(&self, scope: &mut Scope<'_>) {
        scope.set("batches", self.batches);
        scope.set("lines_planned", self.lines_planned);
        scope.set("dedup_saved", self.dedup_saved);
        scope.set("predicted_hits", self.predicted_hits);
        scope.set("predicted_misses", self.predicted_misses);
    }
}

/// Plans metadata prefetches for queued write batches.
#[derive(Debug, Default)]
pub struct BatchPrefetcher {
    stats: PrefetchStats,
}

impl BatchPrefetcher {
    /// A fresh planner with zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulated planner statistics.
    pub fn stats(&self) -> &PrefetchStats {
        &self.stats
    }

    /// Builds the plan for one queued batch.
    ///
    /// `requests` lists every metadata line the batch's members will
    /// touch, in program order and *with* duplicates; `probe` answers
    /// whether a line is already resident on chip and must not disturb
    /// replacement state (use [`Cache::probe`], never
    /// [`Cache::access`]).
    ///
    /// [`Cache::probe`]: crate::Cache::probe
    /// [`Cache::access`]: crate::Cache::access
    pub fn plan(
        &mut self,
        requests: &[(PrefetchClass, BlockAddr)],
        probe: impl Fn(PrefetchClass, BlockAddr) -> bool,
    ) -> PrefetchPlan {
        let mut plan = PrefetchPlan::default();
        let mut seen = std::collections::BTreeSet::new();
        for &(class, addr) in requests {
            if !seen.insert((class, addr)) {
                plan.dedup_saved += 1;
                continue;
            }
            plan.lines.push(PlannedLine {
                class,
                addr,
                resident: probe(class, addr),
            });
        }
        self.stats.batches += 1;
        self.stats.lines_planned += plan.lines.len() as u64;
        self.stats.dedup_saved += plan.dedup_saved;
        self.stats.predicted_hits += plan.predicted_hits();
        self.stats.predicted_misses += plan.predicted_misses();
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_dedups_and_splits_hits_from_misses() {
        let mut p = BatchPrefetcher::new();
        let reqs = [
            (PrefetchClass::Counter, BlockAddr(1)),
            (PrefetchClass::Mac, BlockAddr(2)),
            (PrefetchClass::Counter, BlockAddr(1)), // dup
            (PrefetchClass::Node, BlockAddr(3)),
            (PrefetchClass::Node, BlockAddr(3)), // dup
        ];
        let plan = p.plan(&reqs, |_, addr| addr == BlockAddr(2));
        assert_eq!(plan.lines.len(), 3);
        assert_eq!(plan.dedup_saved, 2);
        assert_eq!(plan.predicted_hits(), 1);
        assert_eq!(plan.predicted_misses(), 2);
        assert_eq!(p.stats().batches, 1);
        assert_eq!(p.stats().lines_planned, 3);
        assert_eq!(p.stats().dedup_saved, 2);
    }

    #[test]
    fn same_address_in_different_classes_is_distinct() {
        // A counter line and a MAC line can never alias in the layout,
        // but the planner must not merge across classes regardless.
        let mut p = BatchPrefetcher::new();
        let reqs = [
            (PrefetchClass::Counter, BlockAddr(9)),
            (PrefetchClass::Mac, BlockAddr(9)),
        ];
        let plan = p.plan(&reqs, |_, _| false);
        assert_eq!(plan.lines.len(), 2);
        assert_eq!(plan.dedup_saved, 0);
    }

    #[test]
    fn empty_batch_plans_nothing_but_still_counts() {
        let mut p = BatchPrefetcher::new();
        let plan = p.plan(&[], |_, _| true);
        assert!(plan.lines.is_empty());
        assert_eq!(p.stats().batches, 1);
        assert_eq!(p.stats().predicted_hits, 0);
    }

    #[test]
    fn stats_register_exposes_every_counter() {
        let mut p = BatchPrefetcher::new();
        p.plan(&[(PrefetchClass::Counter, BlockAddr(1))], |_, _| false);
        let mut reg = triad_sim::stats::StatRegistry::new();
        p.stats().register(&mut reg.scope("prefetch"));
        let flat = reg.to_stat_set();
        assert_eq!(flat.get("prefetch.batches"), 1);
        assert_eq!(flat.get("prefetch.lines_planned"), 1);
        assert_eq!(flat.get("prefetch.predicted_misses"), 1);
        assert_eq!(flat.get("prefetch.predicted_hits"), 0);
        assert_eq!(flat.get("prefetch.dedup_saved"), 0);
    }
}
