//! Set-associative cache models for the Triad-NVM simulator.
//!
//! A [`Cache`] tracks *presence and dirtiness* of 64-byte blocks — the
//! authoritative data always lives in the functional backing store (or,
//! for security metadata, in the metadata stores of `triad-core`).
//! This split keeps the timing model honest (hits, misses, evictions
//! and write-backs all happen exactly where a hardware cache would
//! produce them) without duplicating data movement.
//!
//! The same type models every array in Table 1: the per-core L1/L2, the
//! shared L3, the 128 KB counter cache and the 128 KB Merkle-tree cache.
//!
//! # Example
//!
//! ```rust
//! use triad_cache::{Cache, Replacement};
//! use triad_sim::config::CacheConfig;
//! use triad_sim::BlockAddr;
//!
//! let mut l1 = Cache::new("l1", CacheConfig::new(1024, 2, 2), Replacement::Lru);
//! let first = l1.access(BlockAddr(0), false);
//! assert!(!first.hit);
//! let again = l1.access(BlockAddr(0), false);
//! assert!(again.hit);
//! ```

#![warn(missing_docs)]

pub mod prefetch;

pub use prefetch::{BatchPrefetcher, PrefetchClass, PrefetchPlan, PrefetchStats};

use triad_sim::config::CacheConfig;
use triad_sim::rng::SplitMix64;
use triad_sim::stats::{Scope, StatRegister};
use triad_sim::time::Duration;
use triad_sim::BlockAddr;

/// Replacement policy for a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Least-recently-used (default for all Table 1 caches).
    Lru,
    /// First-in-first-out.
    Fifo,
    /// Pseudo-random (seeded, deterministic).
    Random,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp (access order) or FIFO fill order.
    stamp: u64,
}

/// A block evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Address of the evicted block.
    pub addr: BlockAddr,
    /// Whether it was dirty (must be written back downstream).
    pub dirty: bool,
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the block was already present.
    pub hit: bool,
    /// Block evicted by the fill (only on misses in full sets).
    pub victim: Option<Victim>,
}

/// Per-cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read accesses that hit.
    pub read_hits: u64,
    /// Read accesses that missed.
    pub read_misses: u64,
    /// Write accesses that hit.
    pub write_hits: u64,
    /// Write accesses that missed.
    pub write_misses: u64,
    /// Evictions performed (any cleanliness).
    pub evictions: u64,
    /// Evictions of dirty blocks (write-backs generated).
    pub dirty_evictions: u64,
    /// Explicit flushes of dirty blocks (clwb traffic).
    pub flushes: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Hit rate in `[0, 1]`; zero when no accesses happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            (self.read_hits + self.write_hits) as f64 / total as f64
        }
    }
}

/// A write-back, write-allocate set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    name: String,
    sets: usize,
    ways: usize,
    latency: Duration,
    policy: Replacement,
    lines: Vec<Line>,
    clock: u64,
    rng: SplitMix64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache with the given geometry and replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the configured size is not an exact number of sets
    /// (see [`CacheConfig::sets`]).
    pub fn new(name: impl Into<String>, config: CacheConfig, policy: Replacement) -> Self {
        let sets = config.sets();
        let name = name.into();
        let seed = name
            .bytes()
            .fold(0xC0FF_EE00u64, |acc, b| acc.rotate_left(7) ^ b as u64);
        Cache {
            name,
            sets,
            ways: config.ways,
            latency: config.latency,
            policy,
            lines: vec![Line::default(); sets * config.ways],
            clock: 0,
            rng: SplitMix64::new(seed),
            stats: CacheStats::default(),
        }
    }

    /// The cache's configured hit latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// The cache's name (as given at construction).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        (block.0 % self.sets as u64) as usize
    }

    fn set_lines(&mut self, set: usize) -> &mut [Line] {
        &mut self.lines[set * self.ways..(set + 1) * self.ways]
    }

    /// Accesses `block`; on a miss the block is allocated, possibly
    /// evicting a victim which the caller must handle (write back if
    /// dirty). `write` marks the block dirty.
    pub fn access(&mut self, block: BlockAddr, write: bool) -> AccessOutcome {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(block);
        let policy = self.policy;
        let ways = self.ways;
        // Probe for a hit.
        let lines = self.set_lines(set);
        if let Some(line) = lines.iter_mut().find(|l| l.valid && l.tag == block.0) {
            if policy == Replacement::Lru {
                line.stamp = clock;
            }
            line.dirty |= write;
            if write {
                self.stats.write_hits += 1;
            } else {
                self.stats.read_hits += 1;
            }
            return AccessOutcome {
                hit: true,
                victim: None,
            };
        }
        // Miss: pick a victim way.
        let way = {
            let lines = self.set_lines(set);
            match lines.iter().position(|l| !l.valid) {
                Some(free) => free,
                None => match policy {
                    Replacement::Lru | Replacement::Fifo => lines
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.stamp)
                        .map(|(i, _)| i)
                        .expect("ways >= 1"),
                    Replacement::Random => self.rng.below(ways as u64) as usize,
                },
            }
        };
        let line = &mut self.set_lines(set)[way];
        let victim = if line.valid {
            Some(Victim {
                addr: BlockAddr(line.tag),
                dirty: line.dirty,
            })
        } else {
            None
        };
        *line = Line {
            tag: block.0,
            valid: true,
            dirty: write,
            stamp: clock,
        };
        if write {
            self.stats.write_misses += 1;
        } else {
            self.stats.read_misses += 1;
        }
        if let Some(v) = victim {
            self.stats.evictions += 1;
            if v.dirty {
                self.stats.dirty_evictions += 1;
            }
        }
        AccessOutcome { hit: false, victim }
    }

    /// Whether `block` is present, without disturbing replacement state
    /// or statistics.
    pub fn probe(&self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        self.lines[set * self.ways..(set + 1) * self.ways]
            .iter()
            .any(|l| l.valid && l.tag == block.0)
    }

    /// Whether `block` is present *and dirty*.
    pub fn probe_dirty(&self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        self.lines[set * self.ways..(set + 1) * self.ways]
            .iter()
            .any(|l| l.valid && l.tag == block.0 && l.dirty)
    }

    /// Writes back `block` if present and dirty (clwb semantics: the
    /// line stays valid but becomes clean). Returns whether a
    /// write-back was generated.
    pub fn flush(&mut self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        for l in self.set_lines(set) {
            if l.valid && l.tag == block.0 && l.dirty {
                l.dirty = false;
                self.stats.flushes += 1;
                return true;
            }
        }
        false
    }

    /// Invalidates `block` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<bool> {
        let set = self.set_of(block);
        for l in self.set_lines(set) {
            if l.valid && l.tag == block.0 {
                let dirty = l.dirty;
                *l = Line::default();
                return Some(dirty);
            }
        }
        None
    }

    /// Drops every line (a power loss: volatile contents vanish).
    /// Dirty lines are *lost*, not written back — that is the point of
    /// the paper's crash experiments.
    pub fn lose_all(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
    }

    /// Returns all dirty blocks (used by orderly shutdown and by tests).
    pub fn dirty_blocks(&self) -> Vec<BlockAddr> {
        self.lines
            .iter()
            .filter(|l| l.valid && l.dirty)
            .map(|l| BlockAddr(l.tag))
            .collect()
    }

    /// Number of valid lines currently held.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

impl StatRegister for Cache {
    fn register(&self, scope: &mut Scope<'_>) {
        let s = &self.stats;
        scope.set("read_hits", s.read_hits);
        scope.set("read_misses", s.read_misses);
        scope.set("write_hits", s.write_hits);
        scope.set("write_misses", s.write_misses);
        scope.set("evictions", s.evictions);
        scope.set("dirty_evictions", s.dirty_evictions);
        scope.set("flushes", s.flushes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ways: usize) -> Cache {
        // 4 sets × `ways` ways.
        Cache::new(
            "t",
            CacheConfig::new(4 * ways * 64, ways, 1),
            Replacement::Lru,
        )
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny(2);
        assert!(!c.access(BlockAddr(0), false).hit);
        assert!(c.access(BlockAddr(0), false).hit);
        assert_eq!(c.stats().read_hits, 1);
        assert_eq!(c.stats().read_misses, 1);
    }

    #[test]
    fn write_marks_dirty_and_eviction_reports_it() {
        let mut c = tiny(1); // direct-mapped, 4 sets
        c.access(BlockAddr(0), true);
        assert!(c.probe_dirty(BlockAddr(0)));
        // Block 4 maps to the same set in a 4-set cache.
        let out = c.access(BlockAddr(4), false);
        assert!(!out.hit);
        assert_eq!(
            out.victim,
            Some(Victim {
                addr: BlockAddr(0),
                dirty: true
            })
        );
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2);
        c.access(BlockAddr(0), false); // set 0
        c.access(BlockAddr(4), false); // set 0
        c.access(BlockAddr(0), false); // touch 0 again
        let out = c.access(BlockAddr(8), false); // set 0, evict 4
        assert_eq!(out.victim.unwrap().addr, BlockAddr(4));
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut c = Cache::new("f", CacheConfig::new(2 * 64, 2, 1), Replacement::Fifo);
        c.access(BlockAddr(0), false);
        c.access(BlockAddr(1), false);
        c.access(BlockAddr(0), false); // touch does not refresh FIFO order
        let out = c.access(BlockAddr(2), false);
        assert_eq!(out.victim.unwrap().addr, BlockAddr(0));
    }

    #[test]
    fn random_policy_is_deterministic_per_name() {
        let mk = || {
            let mut c = Cache::new("r", CacheConfig::new(2 * 64, 2, 1), Replacement::Random);
            c.access(BlockAddr(0), false);
            c.access(BlockAddr(1), false);
            c.access(BlockAddr(2), false).victim.unwrap().addr
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn flush_cleans_but_keeps_line() {
        let mut c = tiny(2);
        c.access(BlockAddr(0), true);
        assert!(c.flush(BlockAddr(0)));
        assert!(c.probe(BlockAddr(0)));
        assert!(!c.probe_dirty(BlockAddr(0)));
        assert!(!c.flush(BlockAddr(0)), "second flush is a no-op");
        assert_eq!(c.stats().flushes, 1);
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = tiny(2);
        c.access(BlockAddr(0), true);
        c.access(BlockAddr(1), false);
        assert_eq!(c.invalidate(BlockAddr(0)), Some(true));
        assert_eq!(c.invalidate(BlockAddr(1)), Some(false));
        assert_eq!(c.invalidate(BlockAddr(2)), None);
        assert!(!c.probe(BlockAddr(0)));
    }

    #[test]
    fn lose_all_drops_dirty_data() {
        let mut c = tiny(2);
        c.access(BlockAddr(0), true);
        c.access(BlockAddr(9), true);
        assert_eq!(c.dirty_blocks().len(), 2);
        c.lose_all();
        assert_eq!(c.occupancy(), 0);
        assert!(c.dirty_blocks().is_empty());
    }

    #[test]
    fn hit_rate_math() {
        let mut c = tiny(2);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.access(BlockAddr(0), false);
        c.access(BlockAddr(0), false);
        c.access(BlockAddr(0), true);
        c.access(BlockAddr(0), true);
        assert!((c.stats().hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(c.stats().accesses(), 4);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn stat_register_reports_scoped() {
        let mut c = tiny(2);
        c.access(BlockAddr(0), false);
        let mut reg = triad_sim::stats::StatRegistry::new();
        c.register(&mut reg.scope("l1"));
        assert_eq!(reg.counter("l1.read_misses"), 1);
        assert_eq!(reg.to_stat_set().get("l1.read_misses"), 1);
    }

    #[test]
    fn occupancy_bounded_by_capacity() {
        let mut c = tiny(2); // 8 lines total
        for i in 0..100 {
            c.access(BlockAddr(i), false);
        }
        assert_eq!(c.occupancy(), 8);
    }

    #[test]
    fn latency_and_name_accessors() {
        let c = tiny(2);
        assert_eq!(c.latency(), Duration::from_cpu_cycles(1));
        assert_eq!(c.name(), "t");
    }
}
